//! Ablation studies for the design choices DESIGN.md calls out:
//! broadcast width, breakpoint fitting strategy, fixed-point word format,
//! DVFS operating point, and the table-switch cost asymmetry.

use nova::timeline::table_switch_cycles;
use nova::ApproximatorKind;
use nova_approx::{fit, metrics, Activation, QuantizedPwl};
use nova_bench::table::Table;
use nova_fixed::{QFormat, Rounding, Q4_12, Q6_10, Q8_8};
use nova_noc::{BroadcastSchedule, LinkConfig};
use nova_synth::{timing, units, TechModel};

fn main() {
    broadcast_width();
    breakpoint_strategies();
    word_formats();
    dvfs();
    table_switching();
}

/// Broadcast width: pairs per flit vs NoC clock multiplier and link power.
fn broadcast_width() {
    let tech = TechModel::cmos22();
    let pwl =
        fit::fit_activation(Activation::Exp, 16, fit::BreakpointStrategy::GreedyRefine).unwrap();
    let table = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap();
    let mut t = Table::new(
        "Ablation — broadcast width (16 breakpoints, REACT 240 MHz)",
        &[
            "Pairs/flit",
            "Link bits",
            "Flits/lookup",
            "NoC multiplier",
            "NoC clock (GHz)",
            "Reach @1mm (routers)",
        ],
    );
    for (pairs, tag_bits) in [(4usize, 2u8), (8, 1), (16, 1)] {
        let link = LinkConfig::new(pairs, tag_bits).unwrap();
        let schedule = BroadcastSchedule::compile(&table, link).unwrap();
        let mult = schedule.noc_clock_multiplier();
        let noc_ghz = 0.24 * mult as f64;
        t.row(&[
            pairs.to_string(),
            link.link_bits().to_string(),
            schedule.flit_count().to_string(),
            format!("{mult}x"),
            format!("{noc_ghz:.2}"),
            timing::max_hops_per_cycle(&tech, noc_ghz, 1.0).to_string(),
        ]);
    }
    t.print();
    println!(
        "  The paper's 8-pair/257-bit point balances link width against the NoC\n\
         clock multiplier: halving the link doubles the required clock."
    );
}

/// Breakpoint placement: max error per strategy at the paper's budgets.
fn breakpoint_strategies() {
    let mut t = Table::new(
        "Ablation — breakpoint strategy (max |error|, 16 segments)",
        &["Activation", "Uniform", "CurvatureQuantile", "GreedyRefine"],
    );
    for a in [
        Activation::Exp,
        Activation::Gelu,
        Activation::Sigmoid,
        Activation::Tanh,
    ] {
        let err = |s: fit::BreakpointStrategy| {
            let pwl = fit::fit_activation(a, 16, s).unwrap();
            metrics::compare(&|x| a.eval(x), &|x| pwl.eval(x), a.domain(), 3000).max_abs
        };
        t.row(&[
            a.to_string(),
            format!("{:.2e}", err(fit::BreakpointStrategy::Uniform)),
            format!("{:.2e}", err(fit::BreakpointStrategy::CurvatureQuantile)),
            format!("{:.2e}", err(fit::BreakpointStrategy::GreedyRefine)),
        ]);
    }
    t.print();
}

/// Fixed-point word format: quantized-table error per format.
fn word_formats() {
    let mut t = Table::new(
        "Ablation — word format (max |error| of the quantized table, 16 segments)",
        &["Activation", "Q4.12", "Q6.10", "Q8.8"],
    );
    for a in [Activation::Exp, Activation::Gelu, Activation::Sigmoid] {
        let err = |fmt: QFormat| {
            let pwl = fit::fit_activation(a, 16, fit::BreakpointStrategy::GreedyRefine).unwrap();
            let q = QuantizedPwl::from_pwl(&pwl, fmt, Rounding::NearestEven).unwrap();
            metrics::compare(&|x| a.eval(x), &|x| q.eval_f64(x), a.domain(), 3000).max_abs
        };
        t.row(&[
            a.to_string(),
            format!("{:.2e}", err(Q4_12)),
            format!("{:.2e}", err(Q6_10)),
            format!("{:.2e}", err(Q8_8)),
        ]);
    }
    t.print();
    println!("  Q4.12 wins: activations live in ±8, so fraction bits matter most.");
}

/// DVFS: the NOVA router at three operating points.
fn dvfs() {
    let mut t = Table::new(
        "Ablation — DVFS operating points (128-neuron router, 1 mm pitch)",
        &[
            "Supply (V)",
            "Max NoC clock for 10 hops (GHz)",
            "Router power @1.4/2.8 GHz (mW)",
            "Leakage share (%)",
        ],
    );
    let base = TechModel::cmos22();
    for v in [0.6, 0.8, 1.0] {
        let tech = base.at_voltage(v);
        let router = units::nova_router(&tech, 128, 16, 1.0);
        let fmax = timing::max_single_cycle_freq_ghz(&tech, 10, 1.0);
        let p = router.power_mw(&tech, 1.4, 2.8, 1.0);
        let leak = tech.leakage_mw(router.area_um2);
        t.row(&[
            format!("{v:.1}"),
            format!("{fmax:.2}"),
            format!("{p:.2}"),
            format!("{:.1}", 100.0 * leak / p),
        ]);
    }
    t.print();
    println!("  0.8 V is the paper's point: 0.6 V cannot reach 1.5 GHz over 10 hops.");
}

/// Table switching: NOVA's tables live on the wire, LUTs reload banks.
fn table_switching() {
    let mut t = Table::new(
        "Ablation — operator table switch cost (cycles, 16-entry tables)",
        &[
            "Approximator",
            "Switch cycles",
            "Switches per encoder layer",
        ],
    );
    for kind in [
        ApproximatorKind::NovaNoc,
        ApproximatorKind::PerNeuronLut,
        ApproximatorKind::PerCoreLut,
        ApproximatorKind::NvdlaSdp,
    ] {
        t.row(&[
            kind.label().to_string(),
            table_switch_cycles(kind, 16).to_string(),
            "5 (rsqrt, exp, recip, rsqrt, GELU)".to_string(),
        ]);
    }
    t.print();
    println!(
        "  Attention layers alternate operators every phase; NOVA switches for\n\
         free because the next broadcast simply carries the next table."
    );
}
