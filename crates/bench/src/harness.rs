//! A minimal, dependency-free benchmark harness with a criterion-shaped
//! API.
//!
//! The dependency policy excludes criterion, so this module provides the
//! subset the workspace benches use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkId::from_parameter`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — backed by a simple warmup + fixed-budget timing loop.
//! Results print as `name … time/iter (iters)` lines.
//!
//! Budgets are intentionally small (50 ms per benchmark by default) so
//! `cargo bench` stays fast in CI.
//!
//! # Environment
//!
//! `NOVA_BENCH_MEASURE_MS` sets the per-benchmark measurement budget in
//! milliseconds (warmup gets one fifth of it). Raise it for real
//! measurements; CI sets it to 1 for smoke runs. Values are clamped to
//! ≥ 1 ms — a zero budget would skip warmup and degenerate every
//! benchmark to a single-iteration noise reading. Unparsable values
//! fall back to the 50 ms default.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn measure_budget() -> Duration {
    budget_from_ms(
        std::env::var("NOVA_BENCH_MEASURE_MS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok()),
    )
}

/// Clamps the measurement budget to at least 1 ms: `NOVA_BENCH_MEASURE_MS=0`
/// would otherwise zero the warmup and measure a single unwarmed iteration.
fn budget_from_ms(ms: Option<u64>) -> Duration {
    Duration::from_millis(ms.unwrap_or(50).max(1))
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter` call.
    ns_per_iter: f64,
    /// Iterations executed in the measured window.
    iters: u64,
}

impl Bencher {
    /// Times `routine`, first warming up briefly, then running as many
    /// iterations as fit the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: run for ~1/5 of the budget to stabilize caches/branch
        // predictors and estimate per-iteration cost.
        let warmup = measure_budget() / 5;
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let est_per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;

        // Measurement: a fixed iteration count sized to the budget.
        let budget = measure_budget().as_secs_f64();
        let iters = ((budget / est_per_iter).ceil() as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed().as_secs_f64();
        self.ns_per_iter = elapsed * 1e9 / iters as f64;
        self.iters = iters;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        ns_per_iter: f64::NAN,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<48} (no measurement: closure never called iter)");
    } else {
        println!(
            "{name:<48} {:>12}/iter  ({} iters)",
            human_time(b.ns_per_iter),
            b.iters
        );
    }
}

/// Names a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from the parameter's display form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group; member benchmarks print as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op kept for
    /// criterion compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Emits `main` for a bench binary, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            ns_per_iter: f64::NAN,
            iters: 0,
        };
        b.iter(|| black_box(41u64) + 1);
        assert!(b.iters > 0);
        assert!(b.ns_per_iter.is_finite() && b.ns_per_iter > 0.0);
    }

    #[test]
    fn zero_budget_clamped_to_one_ms() {
        assert_eq!(budget_from_ms(Some(0)), Duration::from_millis(1));
        assert_eq!(budget_from_ms(Some(1)), Duration::from_millis(1));
        assert_eq!(budget_from_ms(Some(250)), Duration::from_millis(250));
        assert_eq!(budget_from_ms(None), Duration::from_millis(50));
    }

    #[test]
    fn id_from_parameter_displays() {
        assert_eq!(BenchmarkId::from_parameter("BERT-tiny").id, "BERT-tiny");
        assert_eq!(BenchmarkId::from_parameter(128).id, "128");
    }
}
