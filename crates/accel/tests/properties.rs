//! Property tests: the analytic SCALE-Sim formulas against the
//! cycle-accurate systolic simulator, plus census/runtime invariants.
//!
//! Checked over deterministic pseudo-random stimulus from the workspace
//! PRNG (`nova_fixed::rng`) instead of proptest, per the no-external-
//! dependency policy.

use nova_accel::config::AcceleratorConfig;
use nova_accel::runtime::{matmul_runtime, utilization};
use nova_accel::systolic::{analytic_cycles_one_array, cycle_accurate, Dataflow};
use nova_fixed::rng::StdRng;
use nova_workloads::bert::{census, BertConfig, MatmulDims};

/// The cycle-accurate OS array matches both the analytic cycle count
/// and a reference matmul for arbitrary small problems.
#[test]
fn cycle_accurate_validates_analytic() {
    let mut rng = StdRng::seed_from_u64(0xC001);
    for _ in 0..48 {
        let m = rng.gen_range(1usize..10);
        let k = rng.gen_range(1usize..10);
        let n = rng.gen_range(1usize..10);
        let r = rng.gen_range(1usize..6);
        let c = rng.gen_range(1usize..6);
        let seed = rng.gen_range(0i64..1000);
        let dims = MatmulDims { m, k, n };
        let a: Vec<i64> = (0..m * k)
            .map(|i| ((i as i64 * 7 + seed) % 9) - 4)
            .collect();
        let b: Vec<i64> = (0..k * n)
            .map(|i| ((i as i64 * 5 + seed) % 7) - 3)
            .collect();
        let run = cycle_accurate::matmul(r, c, dims, &a, &b);
        // Cycles match the analytic formula exactly.
        assert_eq!(
            run.cycles,
            analytic_cycles_one_array(r, c, dims, Dataflow::OutputStationary)
        );
        // Result matches a reference matmul.
        for i in 0..m {
            for j in 0..n {
                let mut s = 0i64;
                for kk in 0..k {
                    s += a[i * k + kk] * b[kk * n + j];
                }
                assert_eq!(run.output[i * n + j], s, "({i}, {j})");
            }
        }
    }
}

/// Analytic cycles are monotone in every matmul dimension.
#[test]
fn analytic_monotone() {
    let mut rng = StdRng::seed_from_u64(0xC002);
    const DATAFLOWS: [Dataflow; 3] = [
        Dataflow::OutputStationary,
        Dataflow::WeightStationary,
        Dataflow::InputStationary,
    ];
    for _ in 0..48 {
        let m = rng.gen_range(1usize..256);
        let k = rng.gen_range(1usize..256);
        let n = rng.gen_range(1usize..256);
        let df = DATAFLOWS[rng.gen_range(0..DATAFLOWS.len())];
        let base = analytic_cycles_one_array(32, 32, MatmulDims { m, k, n }, df);
        let bigger = analytic_cycles_one_array(32, 32, MatmulDims { m: m + 32, k, n }, df);
        assert!(bigger >= base);
        let bigger_k = analytic_cycles_one_array(32, 32, MatmulDims { m, k: k + 32, n }, df);
        assert!(bigger_k >= base);
    }
}

/// Utilization is always in (0, 1] and MAC counts are dataflow-
/// independent.
#[test]
fn runtime_invariants() {
    let mut rng = StdRng::seed_from_u64(0xC003);
    for _ in 0..24 {
        let seq = rng.gen_range(16usize..512);
        let cfg = AcceleratorConfig::tpu_v3_like();
        let ops = census(&BertConfig::bert_mini(), seq);
        let os = matmul_runtime(&cfg, &ops, Dataflow::OutputStationary);
        let ws = matmul_runtime(&cfg, &ops, Dataflow::WeightStationary);
        assert_eq!(os.macs, ws.macs);
        let u = utilization(&cfg, &os);
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }
}

/// Census scaling: doubling the sequence length at least doubles both
/// the MACs and the approximator queries (softmax makes them
/// super-linear).
#[test]
fn census_scales_superlinearly() {
    let mut rng = StdRng::seed_from_u64(0xC004);
    for _ in 0..24 {
        let seq = rng.gen_range(8usize..256);
        let cfg = BertConfig::bert_tiny();
        let a = census(&cfg, seq);
        let b = census(&cfg, 2 * seq);
        assert!(b.total_matmul_macs() >= 2 * a.total_matmul_macs());
        assert!(b.approximator_queries() >= 2 * a.approximator_queries());
    }
}
