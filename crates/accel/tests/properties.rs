//! Property tests: the analytic SCALE-Sim formulas against the
//! cycle-accurate systolic simulator, plus census/runtime invariants.

use nova_accel::config::AcceleratorConfig;
use nova_accel::runtime::{matmul_runtime, utilization};
use nova_accel::systolic::{analytic_cycles_one_array, cycle_accurate, Dataflow};
use nova_workloads::bert::{census, BertConfig, MatmulDims};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cycle-accurate OS array matches both the analytic cycle count
    /// and a reference matmul for arbitrary small problems.
    #[test]
    fn cycle_accurate_validates_analytic(
        m in 1usize..10,
        k in 1usize..10,
        n in 1usize..10,
        r in 1usize..6,
        c in 1usize..6,
        seed in 0i64..1000,
    ) {
        let dims = MatmulDims { m, k, n };
        let a: Vec<i64> = (0..m * k).map(|i| ((i as i64 * 7 + seed) % 9) - 4).collect();
        let b: Vec<i64> = (0..k * n).map(|i| ((i as i64 * 5 + seed) % 7) - 3).collect();
        let run = cycle_accurate::matmul(r, c, dims, &a, &b);
        // Cycles match the analytic formula exactly.
        prop_assert_eq!(
            run.cycles,
            analytic_cycles_one_array(r, c, dims, Dataflow::OutputStationary)
        );
        // Result matches a reference matmul.
        for i in 0..m {
            for j in 0..n {
                let mut s = 0i64;
                for kk in 0..k {
                    s += a[i * k + kk] * b[kk * n + j];
                }
                prop_assert_eq!(run.output[i * n + j], s, "({}, {})", i, j);
            }
        }
    }

    /// Analytic cycles are monotone in every matmul dimension.
    #[test]
    fn analytic_monotone(
        m in 1usize..256,
        k in 1usize..256,
        n in 1usize..256,
        df in prop_oneof![
            Just(Dataflow::OutputStationary),
            Just(Dataflow::WeightStationary),
            Just(Dataflow::InputStationary)
        ],
    ) {
        let base = analytic_cycles_one_array(32, 32, MatmulDims { m, k, n }, df);
        let bigger = analytic_cycles_one_array(32, 32, MatmulDims { m: m + 32, k, n }, df);
        prop_assert!(bigger >= base);
        let bigger_k = analytic_cycles_one_array(32, 32, MatmulDims { m, k: k + 32, n }, df);
        prop_assert!(bigger_k >= base);
    }

    /// Utilization is always in (0, 1] and MAC counts are dataflow-
    /// independent.
    #[test]
    fn runtime_invariants(seq in 16usize..512) {
        let cfg = AcceleratorConfig::tpu_v3_like();
        let ops = census(&BertConfig::bert_mini(), seq);
        let os = matmul_runtime(&cfg, &ops, Dataflow::OutputStationary);
        let ws = matmul_runtime(&cfg, &ops, Dataflow::WeightStationary);
        prop_assert_eq!(os.macs, ws.macs);
        let u = utilization(&cfg, &os);
        prop_assert!(u > 0.0 && u <= 1.0, "utilization {}", u);
    }

    /// Census scaling: doubling the sequence length at least doubles both
    /// the MACs and the approximator queries (softmax makes them
    /// super-linear).
    #[test]
    fn census_scales_superlinearly(seq in 8usize..256) {
        let cfg = BertConfig::bert_tiny();
        let a = census(&cfg, seq);
        let b = census(&cfg, 2 * seq);
        prop_assert!(b.total_matmul_macs() >= 2 * a.total_matmul_macs());
        prop_assert!(b.approximator_queries() >= 2 * a.approximator_queries());
    }
}
