//! Per-inference runtime: the matmul side of the evaluation.
//!
//! Combines a workload census (`nova-workloads`) with a systolic fabric
//! (`systolic`) to produce the cycle counts the Fig 8 energy evaluation
//! multiplies with the power models.

use nova_workloads::bert::OpCensus;

use crate::config::AcceleratorConfig;
use crate::systolic::{analytic_cycles, Dataflow};

/// Matmul runtime of one inference on one accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatmulRuntime {
    /// Total compute cycles across all matmuls (arrays already
    /// parallelized).
    pub cycles: u64,
    /// Total multiply-accumulate operations.
    pub macs: u64,
    /// Wall-clock seconds at the accelerator's core clock.
    pub seconds: f64,
}

nova_serde::impl_serde_struct!(MatmulRuntime {
    cycles,
    macs,
    seconds
});

/// Computes the matmul runtime of `census` on `config` with `dataflow`.
///
/// # Panics
///
/// Panics on degenerate configs (zero arrays) — configuration bugs, not
/// data conditions.
#[must_use]
pub fn matmul_runtime(
    config: &AcceleratorConfig,
    census: &OpCensus,
    dataflow: Dataflow,
) -> MatmulRuntime {
    let cycles: u64 = census
        .matmuls
        .iter()
        .map(|&d| analytic_cycles(&config.systolic, d, dataflow))
        .sum();
    let macs = census.total_matmul_macs();
    let seconds = cycles as f64 / (config.frequency_mhz * 1e6);
    MatmulRuntime {
        cycles,
        macs,
        seconds,
    }
}

/// Utilization: achieved MACs/cycle over the fabric's peak.
#[must_use]
pub fn utilization(config: &AcceleratorConfig, runtime: &MatmulRuntime) -> f64 {
    let peak = (config.systolic.pes_per_array() * config.systolic.arrays) as f64;
    if runtime.cycles == 0 {
        return 0.0;
    }
    (runtime.macs as f64 / runtime.cycles as f64) / peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_workloads::bert::{census, BertConfig};

    #[test]
    fn runtime_positive_and_scales_with_model() {
        let tpu = AcceleratorConfig::tpu_v4_like();
        let tiny = matmul_runtime(
            &tpu,
            &census(&BertConfig::bert_tiny(), 128),
            Dataflow::OutputStationary,
        );
        let roberta = matmul_runtime(
            &tpu,
            &census(&BertConfig::roberta_base(), 128),
            Dataflow::OutputStationary,
        );
        assert!(tiny.cycles > 0);
        assert!(roberta.cycles > 10 * tiny.cycles);
        assert!(roberta.seconds > tiny.seconds);
    }

    #[test]
    fn v4_faster_than_v3() {
        let ops = census(&BertConfig::bert_mini(), 1024);
        let v3 = matmul_runtime(
            &AcceleratorConfig::tpu_v3_like(),
            &ops,
            Dataflow::OutputStationary,
        );
        let v4 = matmul_runtime(
            &AcceleratorConfig::tpu_v4_like(),
            &ops,
            Dataflow::OutputStationary,
        );
        assert!(v4.cycles < v3.cycles);
        assert_eq!(v3.macs, v4.macs);
    }

    #[test]
    fn utilization_bounded() {
        let tpu = AcceleratorConfig::tpu_v3_like();
        let ops = census(&BertConfig::roberta_base(), 1024);
        let rt = matmul_runtime(&tpu, &ops, Dataflow::OutputStationary);
        let u = utilization(&tpu, &rt);
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn react_slow_clock_long_seconds() {
        let ops = census(&BertConfig::bert_tiny(), 128);
        let react = matmul_runtime(
            &AcceleratorConfig::react(),
            &ops,
            Dataflow::OutputStationary,
        );
        let tpu = matmul_runtime(
            &AcceleratorConfig::tpu_v3_like(),
            &ops,
            Dataflow::OutputStationary,
        );
        assert!(react.seconds > tpu.seconds);
    }
}
