//! A functional model of REACT's Weighted-Sum (WS) NoC — the host fabric
//! NOVA integrates with in Fig 5(a).
//!
//! REACT (Upadhyay et al., DAC 2022) computes neuron outputs by in-network
//! reduction: each PE multiplies its input activation by its weight and a
//! line of WS routers accumulates the partial sums as the packet snakes
//! through, so the finished weighted sum pops out of the last router —
//! no shared accumulator tree. NOVA then taps that output through the
//! widened 6×2 router crossbar, feeds the comparators, and returns the
//! approximated activation through the 2×6 output crossbar.
//!
//! This module models one REACT core: a line of `pes` PEs computing a
//! dot-product per output neuron, pipelined one partial-sum hop per cycle,
//! with exact fixed-point arithmetic (wide accumulator, one output
//! rounding) so results can be checked bit-for-bit against a reference.

use nova_fixed::{Fixed, Mac, QFormat, Rounding};

/// One REACT core: `pes` processing elements on a WS line.
///
/// Weights are loaded per output neuron (weight-stationary across the
/// input vector); an input vector of `pes` activations produces one
/// weighted sum per neuron.
#[derive(Debug, Clone)]
pub struct ReactCore {
    format: QFormat,
    rounding: Rounding,
    /// `weights[n][p]`: weight of PE `p` for output neuron `n`.
    weights: Vec<Vec<Fixed>>,
    /// Cycle and traffic counters.
    stats: WsStats,
}

/// Activity counters of the WS fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WsStats {
    /// Weighted sums produced.
    pub sums: u64,
    /// MAC operations across all PEs.
    pub mac_ops: u64,
    /// Partial-sum hops on the WS line.
    pub hops: u64,
    /// Total cycles (pipelined: fill + one result per cycle).
    pub cycles: u64,
}

impl ReactCore {
    /// Builds a core with the given per-neuron weight matrix.
    ///
    /// # Panics
    ///
    /// Panics if the weight matrix is empty or ragged, or if any weight's
    /// format disagrees with the first.
    #[must_use]
    pub fn new(weights: Vec<Vec<Fixed>>, rounding: Rounding) -> Self {
        assert!(!weights.is_empty(), "need at least one output neuron");
        let pes = weights[0].len();
        assert!(pes > 0, "need at least one PE");
        let format = weights[0][0].format();
        for row in &weights {
            assert_eq!(row.len(), pes, "weight matrix must be rectangular");
            assert!(
                row.iter().all(|w| w.format() == format),
                "all weights share one format"
            );
        }
        Self {
            format,
            rounding,
            weights,
            stats: WsStats::default(),
        }
    }

    /// PEs on the WS line.
    #[must_use]
    pub fn pes(&self) -> usize {
        self.weights[0].len()
    }

    /// Output neurons this core computes.
    #[must_use]
    pub fn neurons(&self) -> usize {
        self.weights.len()
    }

    /// The word format of the datapath.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> WsStats {
        self.stats
    }

    /// Computes all neurons' weighted sums for one input vector through
    /// the WS line (in-network reduction, wide accumulator, single output
    /// rounding per neuron).
    ///
    /// Cycle model: the line is pipelined — after `pes` fill cycles the
    /// first sum emerges, then one sum per cycle (`pes + neurons - 1`
    /// total).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.pes()` or on a format mismatch —
    /// wiring bugs in the caller, not data conditions.
    pub fn weighted_sums(&mut self, inputs: &[Fixed]) -> Vec<Fixed> {
        assert_eq!(inputs.len(), self.pes(), "one activation per PE");
        assert!(
            inputs.iter().all(|x| x.format() == self.format),
            "input format must match the core"
        );
        let mut out = Vec::with_capacity(self.neurons());
        for row in &self.weights {
            // In-network reduction: each WS router adds its PE's product
            // into the passing accumulator (modeled by a wide MAC).
            let mut mac = Mac::new(self.format);
            for (&w, &x) in row.iter().zip(inputs) {
                mac.accumulate(w, x)
                    .expect("formats verified in constructor");
            }
            out.push(mac.read(self.rounding));
            self.stats.mac_ops += self.pes() as u64;
            self.stats.hops += self.pes() as u64 - 1;
        }
        self.stats.sums += self.neurons() as u64;
        self.stats.cycles += (self.pes() + self.neurons() - 1) as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_fixed::Q4_12;

    fn w(v: f64) -> Fixed {
        Fixed::from_f64(v, Q4_12, Rounding::NearestEven)
    }

    #[test]
    fn weighted_sum_matches_reference() {
        let weights = vec![vec![w(0.5), w(-0.25), w(1.0)], vec![w(0.1), w(0.2), w(0.3)]];
        let mut core = ReactCore::new(weights, Rounding::NearestEven);
        let inputs = [w(2.0), w(4.0), w(-1.0)];
        let sums = core.weighted_sums(&inputs);
        let expect0 = 0.5 * 2.0 + (-0.25) * 4.0 + -1.0;
        let expect1 = 0.1 * 2.0 + 0.2 * 4.0 + -0.3;
        assert!((sums[0].to_f64() - expect0).abs() < 3.0 * Q4_12.resolution());
        assert!((sums[1].to_f64() - expect1).abs() < 3.0 * Q4_12.resolution());
    }

    #[test]
    fn pipelined_cycle_model() {
        let weights = vec![vec![w(1.0); 8]; 4]; // 8 PEs, 4 neurons
        let mut core = ReactCore::new(weights, Rounding::NearestEven);
        core.weighted_sums(&[w(0.5); 8]);
        let s = core.stats();
        assert_eq!(s.cycles, 8 + 4 - 1);
        assert_eq!(s.mac_ops, 32);
        assert_eq!(s.hops, 4 * 7);
        assert_eq!(s.sums, 4);
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn ragged_weights_rejected() {
        let _ = ReactCore::new(
            vec![vec![w(1.0)], vec![w(1.0), w(2.0)]],
            Rounding::NearestEven,
        );
    }

    #[test]
    #[should_panic(expected = "one activation per PE")]
    fn wrong_input_length_panics() {
        let mut core = ReactCore::new(vec![vec![w(1.0); 3]], Rounding::NearestEven);
        let _ = core.weighted_sums(&[w(1.0); 2]);
    }
}
