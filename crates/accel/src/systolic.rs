//! SCALE-Sim-style systolic array runtime model.
//!
//! The paper runs its BERT benchmarks "in conjunction with the SCALE-Sim
//! toolchain" to get per-inference runtime on the TPU-like hosts. This
//! module implements the same analytic first-order cycle formulas
//! SCALE-Sim uses for the three classic dataflows, and — because analytic
//! formulas deserve a ground truth — a small cycle-accurate systolic array
//! simulator ([`cycle_accurate`]) whose cycle counts and numerical results
//! validate the output-stationary formula exactly on small problems.

use nova_workloads::bert::MatmulDims;

/// A systolic compute fabric: `arrays` independent `rows × cols` grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystolicConfig {
    /// PE rows per array.
    pub rows: usize,
    /// PE columns per array.
    pub cols: usize,
    /// Independent arrays (MXUs / cores) working in parallel.
    pub arrays: usize,
}

nova_serde::impl_serde_struct!(SystolicConfig { rows, cols, arrays });

impl SystolicConfig {
    /// MAC units in one array.
    #[must_use]
    pub fn pes_per_array(&self) -> usize {
        self.rows * self.cols
    }
}

/// The mapping dataflow (SCALE-Sim's `-d` options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Outputs pinned to PEs; operands stream through (TPU-style for
    /// GEMM).
    OutputStationary,
    /// Weights pinned; activations stream (classic TPU conv mapping).
    WeightStationary,
    /// Inputs pinned; weights stream.
    InputStationary,
}

nova_serde::impl_serde_enum!(Dataflow {
    OutputStationary,
    WeightStationary,
    InputStationary
});

/// Analytic cycle count for one `M×K·K×N` matmul on a single array.
///
/// First-order SCALE-Sim formulas (fill + stream + drain per fold):
///
/// - **OS**: each fold computes an `R×C` output tile over the full `K`
///   reduction: `T = (K + R + C − 2) · ⌈M/R⌉ · ⌈N/C⌉`
/// - **WS**: a fold pins an `R×C` weight tile (`R` rows of `K`, `C`
///   columns of `N`) and streams `M` activations:
///   `T = (R + M + C − 1) · ⌈K/R⌉ · ⌈N/C⌉`
/// - **IS**: symmetric to WS with inputs pinned:
///   `T = (R + N + C − 1) · ⌈K/R⌉ · ⌈M/C⌉`
///
/// # Panics
///
/// Panics if any dimension or the array shape is zero.
#[must_use]
pub fn analytic_cycles_one_array(
    rows: usize,
    cols: usize,
    dims: MatmulDims,
    dataflow: Dataflow,
) -> u64 {
    assert!(rows > 0 && cols > 0, "array must have PEs");
    assert!(dims.m > 0 && dims.k > 0 && dims.n > 0, "degenerate matmul");
    let (r, c) = (rows as u64, cols as u64);
    let (m, k, n) = (dims.m as u64, dims.k as u64, dims.n as u64);
    match dataflow {
        Dataflow::OutputStationary => {
            let folds = m.div_ceil(r) * n.div_ceil(c);
            (k + r + c - 2) * folds
        }
        Dataflow::WeightStationary => {
            let folds = k.div_ceil(r) * n.div_ceil(c);
            (r + m + c - 1) * folds
        }
        Dataflow::InputStationary => {
            let folds = k.div_ceil(r) * m.div_ceil(c);
            (r + n + c - 1) * folds
        }
    }
}

/// Analytic cycles for one matmul on the whole fabric: folds are spread
/// across the `arrays` in parallel (SCALE-Sim's multi-array scaling).
///
/// # Panics
///
/// Panics on zero-sized configs/matmuls.
#[must_use]
pub fn analytic_cycles(config: &SystolicConfig, dims: MatmulDims, dataflow: Dataflow) -> u64 {
    assert!(config.arrays > 0, "need at least one array");
    let single = analytic_cycles_one_array(config.rows, config.cols, dims, dataflow);
    single.div_ceil(config.arrays as u64)
}

/// A cycle-accurate output-stationary systolic array simulator.
///
/// Operands skew in from the west (A) and north (B) edges exactly as in
/// the textbook array; every PE is a `nova_fixed`-style wide-accumulator
/// MAC (plain `i64` here since the array is validated on integer data).
/// Used in tests to validate [`analytic_cycles_one_array`] and available
/// to examples as a teaching model.
pub mod cycle_accurate {
    use nova_workloads::bert::MatmulDims;

    /// Result of a cycle-accurate run.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct RunResult {
        /// The output matrix, row-major `M×N`.
        pub output: Vec<i64>,
        /// Cycles until the last PE finished its reduction and results
        /// drained.
        pub cycles: u64,
    }

    /// Multiplies `a` (`M×K`, row-major) by `b` (`K×N`, row-major) on an
    /// `rows×cols` output-stationary array, tiling as needed.
    ///
    /// # Panics
    ///
    /// Panics if operand shapes disagree with `dims` or the array is
    /// empty.
    #[must_use]
    pub fn matmul(rows: usize, cols: usize, dims: MatmulDims, a: &[i64], b: &[i64]) -> RunResult {
        assert!(rows > 0 && cols > 0, "array must have PEs");
        assert_eq!(a.len(), dims.m * dims.k, "A shape mismatch");
        assert_eq!(b.len(), dims.k * dims.n, "B shape mismatch");
        let mut output = vec![0i64; dims.m * dims.n];
        let mut cycles = 0u64;

        // Tile the output space into R×C folds.
        let mut ti = 0;
        while ti < dims.m {
            let th = rows.min(dims.m - ti);
            let mut tj = 0;
            while tj < dims.n {
                let tw = cols.min(dims.n - tj);
                cycles += fold(dims, a, b, ti, tj, th, tw, rows, cols, &mut output);
                tj += cols;
            }
            ti += rows;
        }
        RunResult { output, cycles }
    }

    /// Simulates one output-stationary fold cycle by cycle. Returns the
    /// cycles it consumed.
    #[allow(clippy::too_many_arguments)]
    fn fold(
        dims: MatmulDims,
        a: &[i64],
        b: &[i64],
        ti: usize,
        tj: usize,
        th: usize,
        tw: usize,
        rows: usize,
        cols: usize,
        output: &mut [i64],
    ) -> u64 {
        // acc[r][c] accumulates output (ti+r, tj+c).
        let mut acc = vec![vec![0i64; cols]; rows];
        // a_reg[r][c], b_reg[r][c]: operand registers flowing east/south.
        let mut a_reg = vec![vec![0i64; cols]; rows];
        let mut b_reg = vec![vec![0i64; cols]; rows];
        // The fold is done when the last (skewed) operands have passed the
        // far corner: K + R + C - 2 compute cycles.
        let total = dims.k + rows + cols - 2;
        for t in 0..total {
            // Move operands one step (east / south), far side first.
            for r in (0..rows).rev() {
                for c in (0..cols).rev() {
                    a_reg[r][c] = if c == 0 {
                        // West edge: row r receives A[ti+r][t - r] skewed.
                        edge_a(dims, a, ti, r, t)
                    } else {
                        a_reg[r][c - 1]
                    };
                    b_reg[r][c] = if r == 0 {
                        edge_b(dims, b, tj, c, t)
                    } else {
                        b_reg[r - 1][c]
                    };
                }
            }
            // MAC everywhere (idle PEs see zeros).
            for r in 0..th {
                for c in 0..tw {
                    acc[r][c] += a_reg[r][c] * b_reg[r][c];
                }
            }
        }
        for r in 0..th {
            for c in 0..tw {
                output[(ti + r) * dims.n + (tj + c)] = acc[r][c];
            }
        }
        total as u64
    }

    /// Skewed west-edge feed: row `r` sees A[ti+r][t−r] at time `t`.
    fn edge_a(dims: MatmulDims, a: &[i64], ti: usize, r: usize, t: usize) -> i64 {
        let row = ti + r;
        if row >= dims.m || t < r {
            return 0;
        }
        let k = t - r;
        if k >= dims.k {
            0
        } else {
            a[row * dims.k + k]
        }
    }

    /// Skewed north-edge feed: column `c` sees B[t−c][tj+c] at time `t`.
    fn edge_b(dims: MatmulDims, b: &[i64], tj: usize, c: usize, t: usize) -> i64 {
        let col = tj + c;
        if col >= dims.n || t < c {
            return 0;
        }
        let k = t - c;
        if k >= dims.k {
            0
        } else {
            b[k * dims.n + col]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims(m: usize, k: usize, n: usize) -> MatmulDims {
        MatmulDims { m, k, n }
    }

    fn reference_matmul(d: MatmulDims, a: &[i64], b: &[i64]) -> Vec<i64> {
        let mut out = vec![0i64; d.m * d.n];
        for i in 0..d.m {
            for j in 0..d.n {
                let mut s = 0;
                for k in 0..d.k {
                    s += a[i * d.k + k] * b[k * d.n + j];
                }
                out[i * d.n + j] = s;
            }
        }
        out
    }

    #[test]
    fn cycle_accurate_matches_reference_result() {
        let d = dims(5, 7, 6);
        let a: Vec<i64> = (0..35).map(|i| (i % 5) - 2).collect();
        let b: Vec<i64> = (0..42).map(|i| (i % 7) - 3).collect();
        let run = cycle_accurate::matmul(4, 4, d, &a, &b);
        assert_eq!(run.output, reference_matmul(d, &a, &b));
    }

    #[test]
    fn cycle_accurate_validates_analytic_os_formula() {
        for (m, k, n, r, c) in [
            (4, 4, 4, 4, 4),
            (5, 7, 6, 4, 4),
            (8, 3, 9, 2, 8),
            (1, 1, 1, 4, 4),
        ] {
            let d = dims(m, k, n);
            let a = vec![1i64; m * k];
            let b = vec![1i64; k * n];
            let run = cycle_accurate::matmul(r, c, d, &a, &b);
            let analytic = analytic_cycles_one_array(r, c, d, Dataflow::OutputStationary);
            assert_eq!(run.cycles, analytic, "m={m} k={k} n={n} r={r} c={c}");
        }
    }

    #[test]
    fn os_formula_hand_check() {
        // 128×128 array, M=K=N=128: one fold of 128+128+128-2 cycles.
        let t =
            analytic_cycles_one_array(128, 128, dims(128, 128, 128), Dataflow::OutputStationary);
        assert_eq!(t, 382);
    }

    #[test]
    fn ws_formula_hand_check() {
        // K=256 on 128 rows → 2 folds; each R+M+C-1.
        let t = analytic_cycles_one_array(128, 128, dims(64, 256, 128), Dataflow::WeightStationary);
        assert_eq!(t, 2 * (128 + 64 + 128 - 1));
    }

    #[test]
    fn arrays_divide_folds() {
        let cfg = SystolicConfig {
            rows: 128,
            cols: 128,
            arrays: 8,
        };
        let one =
            analytic_cycles_one_array(128, 128, dims(1024, 1024, 1024), Dataflow::OutputStationary);
        let eight = analytic_cycles(&cfg, dims(1024, 1024, 1024), Dataflow::OutputStationary);
        assert_eq!(eight, one.div_ceil(8));
    }

    #[test]
    fn bigger_matmuls_take_longer() {
        let cfg = SystolicConfig {
            rows: 64,
            cols: 16,
            arrays: 2,
        };
        let small = analytic_cycles(&cfg, dims(64, 64, 64), Dataflow::WeightStationary);
        let big = analytic_cycles(&cfg, dims(256, 256, 256), Dataflow::WeightStationary);
        assert!(big > 8 * small);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_dim_panics() {
        let _ = analytic_cycles_one_array(4, 4, dims(0, 1, 1), Dataflow::OutputStationary);
    }
}
