//! The Table II accelerator configurations.

use crate::systolic::SystolicConfig;

/// Which host accelerator family a configuration models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcceleratorKind {
    /// REACT (Upadhyay et al., DAC 2022) — reconfigurable wearable-class
    /// accelerator with software-configurable NoCs.
    React,
    /// TPU-v3-like tensor core (2 MXUs per core × 2 cores).
    TpuV3,
    /// TPU-v4-like tensor core (4 MXUs per core × 2 cores).
    TpuV4,
    /// Jetson Xavier NX SoC with NVDLA cores (modeled via ESP in the
    /// paper).
    JetsonNx,
}

/// One Table II row plus the attachment parameters Fig 5 implies.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    /// Display name (Table II row label).
    pub name: &'static str,
    /// Host family.
    pub kind: AcceleratorKind,
    /// NOVA routers overlaid ("Num of NOVA routers").
    pub nova_routers: usize,
    /// Output neurons per NOVA router ("Num of neurons per NOVA router").
    pub neurons_per_router: usize,
    /// On-chip memory (kB).
    pub onchip_memory_kb: usize,
    /// Operating frequency at 0.8 V (MHz).
    pub frequency_mhz: f64,
    /// Physical spacing between adjacent NOVA routers (mm) — sets wire
    /// cost and SMART reach. MXUs are large (≈1 mm pitch); NVDLA cores
    /// are small.
    pub router_pitch_mm: f64,
    /// Fraction of cycles the approximator datapath is active while the
    /// accelerator runs attention layers (drives dynamic power).
    pub datapath_activity: f64,
    /// Host die area (mm²) where the paper reports overhead percentages
    /// (`None` when the paper doesn't).
    pub die_area_mm2: Option<f64>,
    /// The systolic-equivalent compute fabric used for runtime modeling.
    pub systolic: SystolicConfig,
    /// Default evaluation sequence length (paper: 1024, but 128 for the
    /// edge-targeted REACT).
    pub default_seq_len: usize,
}

nova_serde::impl_serde_enum!(AcceleratorKind {
    React,
    TpuV3,
    TpuV4,
    JetsonNx
});

// `name` is a `&'static str` row label: serialize-only, rebuilt from the
// named Table II constructors.
nova_serde::impl_serialize_struct!(AcceleratorConfig {
    name,
    kind,
    nova_routers,
    neurons_per_router,
    onchip_memory_kb,
    frequency_mhz,
    router_pitch_mm,
    datapath_activity,
    die_area_mm2,
    systolic,
    default_seq_len,
});

impl AcceleratorConfig {
    /// REACT: 10 routers × 256 neurons, 768 kB, 240 MHz (Table II).
    ///
    /// Die area back-solved from §V.C: NOVA's 1.817 mm² is a 9.11%
    /// overhead, so the REACT die is ≈ 19.9 mm².
    #[must_use]
    pub fn react() -> Self {
        Self {
            name: "REACT",
            kind: AcceleratorKind::React,
            nova_routers: 10,
            neurons_per_router: 256,
            onchip_memory_kb: 768,
            frequency_mhz: 240.0,
            router_pitch_mm: 1.0,
            datapath_activity: 1.0,
            die_area_mm2: Some(19.9),
            systolic: SystolicConfig {
                rows: 16,
                cols: 16,
                arrays: 10,
            },
            default_seq_len: 128,
        }
    }

    /// TPU-v3-like: 4 MXUs of 128×128, 42 MB, 1.4 GHz (Table II).
    #[must_use]
    pub fn tpu_v3_like() -> Self {
        Self {
            name: "TPU v3-like",
            kind: AcceleratorKind::TpuV3,
            nova_routers: 4,
            neurons_per_router: 128,
            onchip_memory_kb: 42 * 1024,
            frequency_mhz: 1400.0,
            router_pitch_mm: 1.0,
            datapath_activity: 1.0,
            die_area_mm2: None,
            systolic: SystolicConfig {
                rows: 128,
                cols: 128,
                arrays: 4,
            },
            default_seq_len: 1024,
        }
    }

    /// TPU-v4-like: 8 MXUs of 128×128, 42 MB, 1.4 GHz (Table II).
    #[must_use]
    pub fn tpu_v4_like() -> Self {
        Self {
            name: "TPU v4-like",
            kind: AcceleratorKind::TpuV4,
            nova_routers: 8,
            neurons_per_router: 128,
            onchip_memory_kb: 42 * 1024,
            frequency_mhz: 1400.0,
            router_pitch_mm: 1.0,
            datapath_activity: 1.0,
            die_area_mm2: None,
            systolic: SystolicConfig {
                rows: 128,
                cols: 128,
                arrays: 8,
            },
            default_seq_len: 1024,
        }
    }

    /// Jetson Xavier NX: 2 NVDLA cores, 16 output neurons each, 256 kB
    /// (Table II). NVDLA's convolution core is 64 MACs wide × 16 deep
    /// (atomic-C × atomic-K). The SDP duty cycle on CNN-dominated NVDLA
    /// workloads is low, hence the small activity factor.
    #[must_use]
    pub fn jetson_xavier_nx() -> Self {
        Self {
            name: "Jetson Xavier NX",
            kind: AcceleratorKind::JetsonNx,
            nova_routers: 2,
            neurons_per_router: 16,
            onchip_memory_kb: 256,
            frequency_mhz: 1400.0,
            router_pitch_mm: 0.3,
            datapath_activity: 0.1,
            die_area_mm2: None,
            systolic: SystolicConfig {
                rows: 64,
                cols: 16,
                arrays: 2,
            },
            default_seq_len: 1024,
        }
    }

    /// All Table II rows, in the paper's order.
    #[must_use]
    pub fn table2() -> Vec<AcceleratorConfig> {
        vec![
            Self::react(),
            Self::tpu_v3_like(),
            Self::tpu_v4_like(),
            Self::jetson_xavier_nx(),
        ]
    }

    /// Total output neurons across the NOVA overlay.
    #[must_use]
    pub fn total_neurons(&self) -> usize {
        self.nova_routers * self.neurons_per_router
    }

    /// Core clock in GHz.
    #[must_use]
    pub fn frequency_ghz(&self) -> f64 {
        self.frequency_mhz / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let rows = AcceleratorConfig::table2();
        assert_eq!(rows.len(), 4);
        let react = &rows[0];
        assert_eq!((react.nova_routers, react.neurons_per_router), (10, 256));
        assert_eq!(react.onchip_memory_kb, 768);
        assert_eq!(react.frequency_mhz, 240.0);
        let v3 = &rows[1];
        assert_eq!((v3.nova_routers, v3.neurons_per_router), (4, 128));
        assert_eq!(v3.onchip_memory_kb, 42 * 1024);
        let v4 = &rows[2];
        assert_eq!((v4.nova_routers, v4.neurons_per_router), (8, 128));
        let nx = &rows[3];
        assert_eq!((nx.nova_routers, nx.neurons_per_router), (2, 16));
        assert_eq!(nx.onchip_memory_kb, 256);
    }

    #[test]
    fn all_configs_fit_single_cycle_broadcast() {
        // Every Table II config keeps ≤ 10 routers (§V.A scalability).
        for cfg in AcceleratorConfig::table2() {
            assert!(cfg.nova_routers <= 10, "{}", cfg.name);
        }
    }

    #[test]
    fn react_targets_the_edge() {
        let react = AcceleratorConfig::react();
        assert_eq!(react.default_seq_len, 128);
        for other in &AcceleratorConfig::table2()[1..] {
            assert_eq!(other.default_seq_len, 1024);
        }
    }

    #[test]
    fn totals() {
        assert_eq!(AcceleratorConfig::react().total_neurons(), 2560);
        assert_eq!(AcceleratorConfig::tpu_v4_like().total_neurons(), 1024);
        assert_eq!(AcceleratorConfig::jetson_xavier_nx().total_neurons(), 32);
    }
}
