//! Fig 5 integration adapters: how the NOVA NoC attaches to each host.
//!
//! The paper wires NOVA into three very different hosts:
//!
//! - **REACT** (Fig 5a): the Weighted-Sum NoC router grows to a 6×2 input
//!   crossbar; one output bypasses NOVA, the other feeds the comparators.
//! - **TPU MXU** (Fig 5b): MXU column outputs feed the comparators; the
//!   NOVA routers sit along the MXU edge.
//! - **NVDLA** (Fig 5c): each convolution core's 16 output neurons feed
//!   one NOVA router, replacing trips through the SDP.
//!
//! The adapter captures what those diagrams imply for the simulator: the
//! line geometry, the extra crossbar/mux hardware the host pays, and the
//! label of the path that was replaced.

use crate::config::{AcceleratorConfig, AcceleratorKind};

/// The extra host-side plumbing an attachment needs (mux/crossbar ports
/// added to existing routers or output buses).
#[derive(Debug, Clone, PartialEq)]
pub struct Attachment {
    /// Host name.
    pub host: &'static str,
    /// Line geometry: routers on the NOVA line.
    pub routers: usize,
    /// Neurons per router.
    pub neurons_per_router: usize,
    /// Router pitch (mm) for wire cost and SMART reach.
    pub pitch_mm: f64,
    /// Crossbar ports added per host router/core (Fig 5a's 6×2 and 2×6
    /// crossbars for REACT; simple output taps elsewhere).
    pub added_crossbar_ports: usize,
    /// Which host unit the NOVA path replaces for non-linear ops.
    pub replaces: &'static str,
}

// Host/replaces are `&'static str` labels: serialize-only.
nova_serde::impl_serialize_struct!(Attachment {
    host,
    routers,
    neurons_per_router,
    pitch_mm,
    added_crossbar_ports,
    replaces
});

/// Builds the Fig 5 attachment for a Table II config.
#[must_use]
pub fn attachment(config: &AcceleratorConfig) -> Attachment {
    let (added_crossbar_ports, replaces) = match config.kind {
        // 6×2 input + 2×6 output crossbars on each WS router.
        AcceleratorKind::React => (16, "WS-NoC vector path"),
        // Output tap on each MXU column bus.
        AcceleratorKind::TpuV3 | AcceleratorKind::TpuV4 => (2, "LUT-based vector unit"),
        // Conv-core output tap, bypassing the SDP.
        AcceleratorKind::JetsonNx => (2, "SDP (Single Data Processor)"),
    };
    Attachment {
        host: config.name,
        routers: config.nova_routers,
        neurons_per_router: config.neurons_per_router,
        pitch_mm: config.router_pitch_mm,
        added_crossbar_ports,
        replaces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn react_gets_crossbars() {
        let a = attachment(&AcceleratorConfig::react());
        assert_eq!(a.added_crossbar_ports, 16);
        assert_eq!(a.routers, 10);
        assert!(a.replaces.contains("WS"));
    }

    #[test]
    fn nvdla_replaces_sdp() {
        let a = attachment(&AcceleratorConfig::jetson_xavier_nx());
        assert!(a.replaces.contains("SDP"));
        assert_eq!(a.neurons_per_router, 16);
    }

    #[test]
    fn attachment_mirrors_config_geometry() {
        for cfg in AcceleratorConfig::table2() {
            let a = attachment(&cfg);
            assert_eq!(a.routers, cfg.nova_routers);
            assert_eq!(a.neurons_per_router, cfg.neurons_per_router);
            assert_eq!(a.pitch_mm, cfg.router_pitch_mm);
        }
    }
}
