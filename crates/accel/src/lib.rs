//! Accelerator substrate: the third-party accelerators NOVA overlays onto.
//!
//! The paper integrates NOVA with four hosts (Table II, Fig 5): REACT (a
//! coarse-grained wearable-class accelerator with software-configurable
//! NoCs), TPU-v3/v4-like systolic tensor cores, and the NVDLA cores of a
//! Jetson Xavier NX. This crate provides:
//!
//! - [`config`]: the Table II configurations as data,
//! - [`systolic`]: a SCALE-Sim-style runtime model — analytic cycle
//!   formulas for output/weight/input-stationary dataflows, *validated
//!   against a cycle-accurate systolic-array simulator* built on the
//!   `nova-fixed` MAC,
//! - [`integrate`]: the Fig 5 attachment descriptions (how many NOVA
//!   routers, how many neurons each serves, router pitch),
//! - [`runtime`]: per-inference matmul cycle counts for a workload census.
//!
//! # Example
//!
//! ```
//! use nova_accel::config::AcceleratorConfig;
//! use nova_accel::systolic::{analytic_cycles, Dataflow, SystolicConfig};
//! use nova_workloads::bert::MatmulDims;
//!
//! let tpu = AcceleratorConfig::tpu_v4_like();
//! let dims = MatmulDims { m: 256, k: 128, n: 512 };
//! let cycles = analytic_cycles(&tpu.systolic, dims, Dataflow::OutputStationary);
//! assert!(cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod integrate;
pub mod nvdla;
pub mod react;
pub mod runtime;
pub mod systolic;

pub use config::AcceleratorConfig;
