//! A functional model of the NVDLA convolution core — the Fig 5(c) host.
//!
//! NVDLA's convolution engine is organized around *atomic* operations: an
//! atomic-C (64-wide input-channel dot product) times atomic-K (16
//! parallel output channels) MAC cube that consumes one input-feature
//! vector per cycle. The Jetson Xavier NX integration connects each
//! core's 16 output neurons (atomic-K lanes) to one NOVA router, which
//! replaces trips through the SDP for activation functions.
//!
//! The model computes direct convolutions bit-accurately on the fixed
//! datapath and counts cycles with the atomic-operation schedule, so the
//! Jetson rows of the evaluation rest on a real substrate rather than an
//! im2col abstraction.

use nova_fixed::{Fixed, Mac, QFormat, Rounding};

/// NVDLA convolution-core geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvdlaCoreConfig {
    /// Input channels consumed per atomic op (NVDLA full: 64).
    pub atomic_c: usize,
    /// Output channels produced in parallel (NVDLA full: 16).
    pub atomic_k: usize,
}

impl NvdlaCoreConfig {
    /// The Jetson Xavier NX configuration (full NVDLA: 64×16).
    #[must_use]
    pub fn jetson() -> Self {
        Self {
            atomic_c: 64,
            atomic_k: 16,
        }
    }
}

/// A convolution problem: `out_c` filters of `k×k×in_c` over an
/// `h×w×in_c` input, stride 1, valid padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel size.
    pub k: usize,
}

impl ConvShape {
    /// Output height (valid padding, stride 1).
    #[must_use]
    pub fn out_h(&self) -> usize {
        self.h - self.k + 1
    }

    /// Output width.
    #[must_use]
    pub fn out_w(&self) -> usize {
        self.w - self.k + 1
    }

    /// Multiply-accumulates in the convolution.
    #[must_use]
    pub fn macs(&self) -> u64 {
        (self.out_h() * self.out_w() * self.out_c * self.k * self.k * self.in_c) as u64
    }
}

/// Result of a convolution run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvResult {
    /// Output feature map, `[out_h][out_w][out_c]` flattened row-major.
    pub output: Vec<Fixed>,
    /// Cycles under the atomic-op schedule.
    pub cycles: u64,
}

/// Executes a convolution on the atomic MAC cube.
///
/// Layouts: `input[y][x][c]` and `weights[o][ky][kx][c]`, both flattened
/// row-major. Arithmetic is the hardware path: wide accumulator per
/// output, one rounding at writeback.
///
/// Cycle model: every output position needs
/// `k·k·⌈in_c/atomic_c⌉` atomic ops; `atomic_k` output channels share
/// them, so positions cost `k·k·⌈in_c/atomic_c⌉·⌈out_c/atomic_k⌉` cycles
/// each (one atomic op per cycle).
///
/// # Panics
///
/// Panics on shape/format mismatches (wiring bugs).
#[must_use]
pub fn convolve(
    config: NvdlaCoreConfig,
    shape: ConvShape,
    input: &[Fixed],
    weights: &[Fixed],
    format: QFormat,
    rounding: Rounding,
) -> ConvResult {
    assert_eq!(input.len(), shape.h * shape.w * shape.in_c, "input size");
    assert_eq!(
        weights.len(),
        shape.out_c * shape.k * shape.k * shape.in_c,
        "weight size"
    );
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut output = Vec::with_capacity(oh * ow * shape.out_c);
    let idx_in = |y: usize, x: usize, c: usize| (y * shape.w + x) * shape.in_c + c;
    let idx_w = |o: usize, ky: usize, kx: usize, c: usize| {
        ((o * shape.k + ky) * shape.k + kx) * shape.in_c + c
    };
    for y in 0..oh {
        for x in 0..ow {
            for o in 0..shape.out_c {
                let mut mac = Mac::new(format);
                for ky in 0..shape.k {
                    for kx in 0..shape.k {
                        for c in 0..shape.in_c {
                            mac.accumulate(
                                weights[idx_w(o, ky, kx, c)],
                                input[idx_in(y + ky, x + kx, c)],
                            )
                            .expect("uniform formats");
                        }
                    }
                }
                output.push(mac.read(rounding));
            }
        }
    }
    let atomics_per_position = (shape.k * shape.k) as u64
        * shape.in_c.div_ceil(config.atomic_c) as u64
        * shape.out_c.div_ceil(config.atomic_k) as u64;
    let cycles = (oh * ow) as u64 * atomics_per_position;
    ConvResult { output, cycles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_fixed::Q4_12;

    fn fx(v: f64) -> Fixed {
        Fixed::from_f64(v, Q4_12, Rounding::NearestEven)
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        // 1×1 kernel, weight 1.0, one channel: output == input.
        let shape = ConvShape {
            h: 3,
            w: 3,
            in_c: 1,
            out_c: 1,
            k: 1,
        };
        let input: Vec<Fixed> = (0..9).map(|i| fx(i as f64 * 0.25)).collect();
        let r = convolve(
            NvdlaCoreConfig::jetson(),
            shape,
            &input,
            &[fx(1.0)],
            Q4_12,
            Rounding::NearestEven,
        );
        assert_eq!(r.output, input);
    }

    #[test]
    fn conv_matches_reference() {
        // 2×2 kernel over 3×3 single-channel input, all weights 1.0:
        // each output is the window sum.
        let shape = ConvShape {
            h: 3,
            w: 3,
            in_c: 1,
            out_c: 1,
            k: 2,
        };
        let input: Vec<Fixed> = (0..9).map(|i| fx(i as f64 * 0.1)).collect();
        let weights = vec![fx(1.0); 4];
        let r = convolve(
            NvdlaCoreConfig::jetson(),
            shape,
            &input,
            &weights,
            Q4_12,
            Rounding::NearestEven,
        );
        // Window at (0,0): inputs 0,1,3,4 → (0.0+0.1+0.3+0.4)=0.8.
        assert!((r.output[0].to_f64() - 0.8).abs() < 4.0 * Q4_12.resolution());
        assert_eq!(r.output.len(), 4);
    }

    #[test]
    fn cycle_model_counts_atomics() {
        // 16 in-channels (< atomic-C 64 → 1 atomic), 32 out-channels
        // (2 × atomic-K 16), 3×3 kernel, 8×8 output.
        let shape = ConvShape {
            h: 10,
            w: 10,
            in_c: 16,
            out_c: 32,
            k: 3,
        };
        let cfg = NvdlaCoreConfig::jetson();
        let input = vec![fx(0.0); 10 * 10 * 16];
        let weights = vec![fx(0.0); 32 * 3 * 3 * 16];
        let r = convolve(cfg, shape, &input, &weights, Q4_12, Rounding::NearestEven);
        assert_eq!(r.cycles, (64 * 9) * 2);
    }

    #[test]
    fn deeper_channels_cost_more_atomics() {
        let cfg = NvdlaCoreConfig::jetson();
        let mk = |in_c: usize| {
            let shape = ConvShape {
                h: 4,
                w: 4,
                in_c,
                out_c: 16,
                k: 1,
            };
            convolve(
                cfg,
                shape,
                &vec![fx(0.0); 16 * in_c],
                &vec![fx(0.0); 16 * in_c],
                Q4_12,
                Rounding::NearestEven,
            )
            .cycles
        };
        assert_eq!(mk(128), 2 * mk(64));
    }

    #[test]
    fn macs_accounting() {
        let shape = ConvShape {
            h: 5,
            w: 5,
            in_c: 2,
            out_c: 3,
            k: 3,
        };
        // out 3×3, 3 filters, 3×3 kernel, 2 channels.
        assert_eq!(shape.macs(), 3 * 3 * 3 * 9 * 2);
    }
}
