//! Self-tests for the model checker: prove it *finds* the classic
//! concurrency bugs (stale reads, data races, lost wakeups, deadlock)
//! and converges with zero violations on the correct protocols.
//!
//! These run in plain builds — the shim instruments through a
//! thread-local, so no `--cfg nova_check_model` is needed here. The
//! real `nova::spsc` protocol tests live in
//! `crates/core/tests/model.rs`.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use nova_check::sched::{explore, model, ModelOptions, Strategy, ViolationKind};
use nova_check::shim::atomic::{AtomicBool, AtomicUsize};
use nova_check::shim::cell::RaceProbe;
use nova_check::shim::thread;

fn opts() -> ModelOptions {
    ModelOptions {
        max_executions: 50_000,
        ..ModelOptions::default()
    }
}

#[test]
fn message_passing_release_acquire_is_clean() {
    let report = model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42, "acquire saw the flag");
        }
        t.join().unwrap();
    });
    assert!(report.exhausted, "small litmus must be fully explored");
    assert!(report.executions > 1, "more than one interleaving exists");
}

#[test]
fn message_passing_relaxed_publish_is_caught() {
    let report = explore(opts(), || {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            // BUG: relaxed publish — the reader may see the flag but
            // stale data.
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
    match report.violation {
        Some(v) => assert!(
            matches!(v.kind, ViolationKind::Panic { .. }),
            "stale read should fail the assert, got {v}"
        ),
        None => panic!(
            "relaxed publish must be caught ({} execs)",
            report.executions
        ),
    }
}

#[test]
fn unsynchronized_cell_writes_are_a_data_race() {
    let report = explore(opts(), || {
        let probe = Arc::new(RaceProbe::new());
        let p2 = Arc::clone(&probe);
        let t = thread::spawn(move || p2.touch());
        probe.touch();
        t.join().unwrap();
    });
    match report.violation {
        Some(v) => assert!(matches!(v.kind, ViolationKind::DataRace { .. }), "got {v}"),
        None => panic!("unsynchronized cell accesses must race"),
    }
}

#[test]
fn release_acquire_ordered_cell_accesses_are_not_a_race() {
    let report = model(|| {
        let probe = Arc::new(RaceProbe::new());
        let flag = Arc::new(AtomicBool::new(false));
        let (p2, f2) = (Arc::clone(&probe), Arc::clone(&flag));
        let t = thread::spawn(move || {
            p2.touch();
            f2.store(true, Ordering::Release);
        });
        // Spin-free: only touch after the acquire load proves the
        // writer is done; otherwise skip (the model explores both).
        if flag.load(Ordering::Acquire) {
            probe.touch();
        }
        t.join().unwrap();
    });
    assert!(report.exhausted);
}

#[test]
fn dekker_store_load_needs_seqcst() {
    // Store-buffering litmus: with SeqCst both threads cannot read 0.
    let run = |ord_store: Ordering, ord_load: Ordering| {
        explore(opts(), move || {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = thread::spawn(move || {
                x2.store(1, ord_store);
                y2.load(ord_load)
            });
            y.store(1, ord_store);
            let r1 = x.load(ord_load);
            let r2 = t.join().unwrap();
            assert!(
                !(r1 == 0 && r2 == 0),
                "both sides read 0: store-load ordering lost"
            );
        })
    };
    let sc = run(Ordering::SeqCst, Ordering::SeqCst);
    assert!(
        sc.violation.is_none(),
        "SeqCst Dekker must hold: {:?}",
        sc.violation
    );
    assert!(sc.exhausted);

    let weak = run(Ordering::Release, Ordering::Acquire);
    assert!(
        weak.violation.is_some(),
        "release/acquire Dekker must be refuted ({} execs)",
        weak.executions
    );
}

#[test]
fn rmw_counter_is_exact() {
    let report = model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        n.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2, "RMWs never lose updates");
    });
    assert!(report.exhausted);
}

#[test]
fn park_with_no_unparker_is_a_deadlock() {
    let report = explore(opts(), || {
        thread::park();
    });
    match report.violation {
        Some(v) => assert!(matches!(v.kind, ViolationKind::Deadlock), "got {v}"),
        None => panic!("lone park must deadlock"),
    }
}

/// A miniature parked-consumer handshake over one data flag — the
/// exact raise-then-recheck protocol `nova::spsc` uses, small enough
/// to exhaust quickly.
fn mini_ring(recheck_after_raise: bool) -> nova_check::Report {
    explore(opts(), move || {
        let data = Arc::new(AtomicUsize::new(0));
        let parked = Arc::new(AtomicBool::new(false));
        // Same shape as `spsc::Inner::resident`: the consumer binds its
        // own handle before raising the parked flag.
        let resident = Arc::new(std::sync::OnceLock::new());
        let (d2, p2, r2) = (
            Arc::clone(&data),
            Arc::clone(&parked),
            Arc::clone(&resident),
        );
        let consumer = thread::spawn(move || loop {
            if d2.load(Ordering::SeqCst) != 0 {
                return d2.load(Ordering::SeqCst);
            }
            r2.get_or_init(thread::current);
            p2.store(true, Ordering::SeqCst);
            if recheck_after_raise && d2.load(Ordering::SeqCst) != 0 {
                p2.store(false, Ordering::SeqCst);
                return d2.load(Ordering::SeqCst);
            }
            thread::park();
            p2.store(false, Ordering::SeqCst);
        });
        data.store(7, Ordering::SeqCst);
        if parked.swap(false, Ordering::SeqCst) {
            // The consumer raised its flag after binding its handle:
            // hand it the wakeup.
            resident
                .get()
                .expect("parked flag implies a bound resident")
                .unpark();
        }
        assert_eq!(consumer.join().unwrap(), 7);
    })
}

#[test]
fn parked_consumer_with_recheck_is_clean() {
    let report = mini_ring(true);
    assert!(
        report.violation.is_none(),
        "raise-then-recheck must never lose a wakeup: {:?}",
        report.violation
    );
    assert!(report.exhausted, "mini protocol must be fully explored");
}

#[test]
fn missing_recheck_after_raise_is_caught_as_lost_wakeup() {
    let report = mini_ring(false);
    match report.violation {
        Some(v) => assert!(
            matches!(v.kind, ViolationKind::Deadlock),
            "a lost wakeup manifests as deadlock, got {v}"
        ),
        None => panic!(
            "the broken variant (no re-check after raising the parked \
             flag) must be caught ({} execs)",
            report.executions
        ),
    }
}

#[test]
fn seeded_replay_is_deterministic() {
    let body = |seed: u64| {
        explore(
            ModelOptions {
                max_executions: 40,
                strategy: Strategy::Random { seed },
                prune: false,
                ..ModelOptions::default()
            },
            || {
                let n = Arc::new(AtomicUsize::new(0));
                let n2 = Arc::clone(&n);
                let t = thread::spawn(move || {
                    n2.fetch_add(1, Ordering::SeqCst);
                });
                n.fetch_add(1, Ordering::SeqCst);
                t.join().unwrap();
            },
        )
    };
    let a = body(0xA11CE);
    let b = body(0xA11CE);
    assert_eq!(
        a.schedule_hash, b.schedule_hash,
        "same seed must walk the same schedules"
    );
    assert_eq!(a.executions, b.executions);
    let c = body(0xB0B);
    assert_ne!(
        a.schedule_hash, c.schedule_hash,
        "different seeds should diverge on this tree"
    );
}

#[test]
fn violation_choices_replay_to_the_same_verdict() {
    let buggy = || {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    };
    let found = explore(opts(), buggy);
    let v = found.violation.expect("bug must be found");
    let replay = explore(
        ModelOptions {
            strategy: Strategy::Replay(v.choices.clone()),
            ..ModelOptions::default()
        },
        buggy,
    );
    assert_eq!(replay.executions, 1, "replay runs exactly one schedule");
    let rv = replay
        .violation
        .expect("replay must reproduce the violation");
    assert!(
        matches!(rv.kind, ViolationKind::Panic { .. }),
        "same verdict on replay, got {rv}"
    );
}

#[test]
fn step_cap_truncates_instead_of_hanging() {
    let report = explore(
        ModelOptions {
            max_executions: 5,
            max_steps: 10,
            ..ModelOptions::default()
        },
        || {
            for _ in 0..100 {
                thread::yield_now();
            }
        },
    );
    assert!(report.truncated > 0, "the cap must bite");
    assert!(report.violation.is_none(), "truncation is not a violation");
    assert!(report.deepest <= 10);
}
