//! Vector clocks — the happens-before substrate of the model checker.
//!
//! Every model thread carries a [`VClock`]; release stores snapshot the
//! storing thread's clock, acquire loads join the snapshot back in, and
//! the data-race detector compares clocks to decide whether two
//! [`UnsafeCell`](crate::shim::cell::UnsafeCell) accesses are ordered.

/// A grow-on-demand vector clock over model-thread ids.
///
/// Missing components read as 0, so clocks over different thread counts
/// compare naturally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The zero clock (happens-before everything).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The component for thread `tid`.
    #[must_use]
    pub fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Bumps thread `tid`'s own component (one per model operation).
    pub fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Component-wise maximum: `self` absorbs everything `other` has
    /// seen (the acquire half of a release/acquire pair).
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Whether every component of `self` is ≤ the matching component of
    /// `other` — i.e. everything `self` describes happens-before (or is)
    /// what `other` has seen.
    #[must_use]
    pub fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(tid, &c)| c <= other.get(tid))
    }

    /// Feeds the clock into a state hash (FNV-1a accumulation).
    #[must_use]
    pub fn fnv(&self, mut hash: u64) -> u64 {
        for &c in &self.0 {
            hash ^= c;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_le() {
        let mut a = VClock::new();
        let mut b = VClock::new();
        a.tick(0);
        a.tick(0);
        b.tick(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut joined = a.clone();
        joined.join(&b);
        assert!(a.le(&joined));
        assert!(b.le(&joined));
        assert_eq!(joined.get(0), 2);
        assert_eq!(joined.get(1), 1);
        assert_eq!(joined.get(7), 0, "missing components read as zero");
    }

    #[test]
    fn zero_clock_happens_before_everything() {
        let zero = VClock::new();
        let mut busy = VClock::new();
        busy.tick(3);
        assert!(zero.le(&busy));
        assert!(zero.le(&zero));
    }
}
