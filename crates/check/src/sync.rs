//! The cfg-selected concurrency facade production code imports.
//!
//! In normal builds every name here is a re-export of the std
//! original — zero cost, zero behavior change. Compiling with
//! `RUSTFLAGS="--cfg nova_check_model"` flips the aliases to the
//! instrumented [`shim`](crate::shim) types so the same source runs
//! under the [`sched`](crate::sched) interleaving explorer. `spsc.rs`
//! (and the `serving.rs` atomic counters) import *only* through this
//! module — `nova-lint` rule R3 enforces that mechanically.

/// Atomics: `AtomicBool`/`AtomicUsize`/`AtomicU64` plus the std
/// `Ordering` enum (the shim methods accept std orderings directly).
pub mod atomic {
    #[cfg(nova_check_model)]
    pub use crate::shim::atomic::{AtomicBool, AtomicU64, AtomicUsize};
    #[cfg(not(nova_check_model))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

    pub use std::sync::atomic::Ordering;
}

/// `UnsafeCell`: race-checked under the model cfg.
pub mod cell {
    #[cfg(nova_check_model)]
    pub use crate::shim::cell::UnsafeCell;
    #[cfg(not(nova_check_model))]
    pub use std::cell::UnsafeCell;
}

/// Thread surface: `spawn`/`current`/`park`/`yield_now`, `Thread`,
/// `JoinHandle`.
pub mod thread {
    #[cfg(nova_check_model)]
    pub use crate::shim::thread::{current, park, spawn, yield_now, JoinHandle, Thread};
    #[cfg(not(nova_check_model))]
    pub use std::thread::{current, park, spawn, yield_now, JoinHandle, Thread};
}

#[cfg(nova_check_model)]
pub use crate::shim::mutex::{Mutex, MutexGuard};
#[cfg(not(nova_check_model))]
pub use std::sync::{Mutex, MutexGuard};

// Always the std originals: `Arc`'s refcount synchronization is modeled
// by the shim's `get_mut` join, and `OnceLock` only ferries wakeup
// handles (no protocol data rides on its internal lock).
pub use std::sync::{Arc, OnceLock};
