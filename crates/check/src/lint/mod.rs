//! `nova-lint` — source-level enforcement of the workspace's prose
//! invariants.
//!
//! Five rules, all driven by the dependency-free [`lexer`](crate::lexer)
//! (so keywords inside strings, comments, and identifiers like
//! `unsafe_code` never fire):
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `unsafe-carve-out` | every `.rs` file | the `unsafe` keyword appears only in the audited carve-out (`crates/core/src/spsc.rs`, `crates/core/src/serving.rs`) |
//! | `wall-clock` | deterministic crates (fixed/approx/lut/noc/synth/serde/workloads) | no `Instant`, `SystemTime`, or `thread::sleep` — simulation results must not depend on the host clock |
//! | `atomic-facade` | `crates/core/src/**` | atomics are named through `nova_check::sync`, never `std::sync::atomic`, so model builds instrument every site |
//! | `safety-comment` | the carve-out files | every `unsafe` keyword has a `SAFETY` comment within the six lines above it |
//! | `ordering-rationale` | the carve-out files | every atomic callsite naming an `Ordering` carries an `ordering:` rationale comment on the same line or the four above |
//!
//! [`lint_source`] checks one file (used by the tests with seeded
//! violations); [`lint_workspace`] walks a tree; the `nova-lint` binary
//! wraps the latter with `-D`-style (non-zero exit) failure.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Tok, Token};

/// The audited files allowed to contain `unsafe` (and required to
/// comment every site).
pub const UNSAFE_CARVE_OUT: [&str; 2] = ["crates/core/src/spsc.rs", "crates/core/src/serving.rs"];

/// Crate prefixes that must stay wall-clock free (deterministic
/// simulation / fitting / serialization code).
pub const WALL_CLOCK_FREE: [&str; 7] = [
    "crates/fixed/",
    "crates/approx/",
    "crates/lut/",
    "crates/noc/",
    "crates/synth/",
    "crates/serde/",
    "crates/workloads/",
];

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule id.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Atomic method names whose callsites want an ordering rationale.
const ATOMIC_METHODS: [&str; 8] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "compare_exchange",
];

/// The ordering identifiers that mark a callsite as atomic.
const ORDERINGS: [&str; 5] = ["SeqCst", "Acquire", "Release", "AcqRel", "Relaxed"];

fn comment_lines_containing(toks: &[Token<'_>], needle: &str) -> Vec<u32> {
    let is_comment = |t: &Token<'_>| matches!(t.tok, Tok::LineComment(_) | Tok::BlockComment(_));
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let hit = match toks[i].tok {
            Tok::LineComment(c) | Tok::BlockComment(c) => c.contains(needle),
            _ => false,
        };
        if hit {
            // The marker counts from its own line AND from the last
            // line of the contiguous comment run it opens — a long
            // `SAFETY:` rationale spanning a dozen lines still covers
            // the `unsafe` right below it.
            out.push(toks[i].line);
            let mut j = i;
            while j + 1 < toks.len()
                && is_comment(&toks[j + 1])
                && toks[j + 1].line <= toks[j].line + 1
            {
                j += 1;
            }
            if j > i {
                out.push(toks[j].line);
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

fn has_marker_within(marks: &[u32], line: u32, above: u32) -> bool {
    marks.iter().any(|&m| m <= line && m + above >= line)
}

/// Index of the first token of a `cfg(test)` attribute, if any — the
/// comment-discipline rules stop there (test modules sit at file end
/// in this workspace and assert, they don't document orderings).
fn test_module_start(toks: &[Token<'_>]) -> usize {
    for (i, w) in toks.windows(4).enumerate() {
        if let (Tok::Ident("cfg"), Tok::Punct('('), Tok::Ident("test"), Tok::Punct(')')) =
            (w[0].tok, w[1].tok, w[2].tok, w[3].tok)
        {
            return i;
        }
    }
    toks.len()
}

/// Lints one file's source. `rel_path` is the workspace-relative path
/// with forward slashes — it decides which rules apply.
#[must_use]
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let toks = lex(src);
    let mut out = Vec::new();
    let in_carve_out = UNSAFE_CARVE_OUT.contains(&rel_path);
    let wall_clock_free = WALL_CLOCK_FREE.iter().any(|p| rel_path.starts_with(p));
    let in_core = rel_path.starts_with("crates/core/src/");
    let test_start = test_module_start(&toks);
    let safety_marks = comment_lines_containing(&toks, "SAFETY");
    let ordering_marks = comment_lines_containing(&toks, "ordering:");

    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = t.tok else { continue };
        match name {
            "unsafe" => {
                if !in_carve_out {
                    out.push(Finding {
                        path: rel_path.to_string(),
                        line: t.line,
                        rule: "unsafe-carve-out",
                        message: "`unsafe` outside the audited carve-out \
                                  (crates/core/src/{spsc,serving}.rs); \
                                  move the code there or find a safe shape"
                            .into(),
                    });
                } else if i < test_start && !has_marker_within(&safety_marks, t.line, 6) {
                    out.push(Finding {
                        path: rel_path.to_string(),
                        line: t.line,
                        rule: "safety-comment",
                        message: "`unsafe` without a `SAFETY:` comment in the six \
                                  lines above it"
                            .into(),
                    });
                }
            }
            "Instant" | "SystemTime" if wall_clock_free => {
                out.push(Finding {
                    path: rel_path.to_string(),
                    line: t.line,
                    rule: "wall-clock",
                    message: format!(
                        "`{name}` in a deterministic crate — results must not \
                         depend on the host clock"
                    ),
                });
            }
            "sleep" if wall_clock_free => {
                // Only `thread::sleep` (path-qualified) counts.
                let path_qualified = i >= 3
                    && matches!(toks[i - 3].tok, Tok::Ident("thread"))
                    && matches!(toks[i - 2].tok, Tok::Punct(':'))
                    && matches!(toks[i - 1].tok, Tok::Punct(':'));
                if path_qualified {
                    out.push(Finding {
                        path: rel_path.to_string(),
                        line: t.line,
                        rule: "wall-clock",
                        message: "`thread::sleep` in a deterministic crate — \
                                  results must not depend on the host clock"
                            .into(),
                    });
                }
            }
            "atomic" if in_core => {
                // The raw path `std::sync::atomic` (import or inline).
                let raw_std_path = i >= 6
                    && matches!(toks[i - 6].tok, Tok::Ident("std"))
                    && matches!(toks[i - 5].tok, Tok::Punct(':'))
                    && matches!(toks[i - 4].tok, Tok::Punct(':'))
                    && matches!(toks[i - 3].tok, Tok::Ident("sync"))
                    && matches!(toks[i - 2].tok, Tok::Punct(':'))
                    && matches!(toks[i - 1].tok, Tok::Punct(':'));
                if raw_std_path {
                    out.push(Finding {
                        path: rel_path.to_string(),
                        line: t.line,
                        rule: "atomic-facade",
                        message: "raw `std::sync::atomic` in nova-core — import \
                                  through `nova_check::sync` so model builds \
                                  instrument the site"
                            .into(),
                    });
                }
            }
            // A `.load(..)`-shaped call is atomic when an Ordering
            // identifier appears inside its parentheses.
            m if in_carve_out
                && i < test_start
                && ATOMIC_METHODS.contains(&m)
                && matches!(
                    toks.get(i.wrapping_sub(1)).map(|t| t.tok),
                    Some(Tok::Punct('.'))
                )
                && call_names_an_ordering(&toks, i)
                && !has_marker_within(&ordering_marks, t.line, 4) =>
            {
                out.push(Finding {
                    path: rel_path.to_string(),
                    line: t.line,
                    rule: "ordering-rationale",
                    message: format!(
                        "atomic `.{m}(..)` without an `ordering:` rationale \
                         comment on the same line or the four above"
                    ),
                });
            }
            _ => {}
        }
    }
    out
}

/// Whether the call whose method ident sits at `toks[i]` names one of
/// the `Ordering` variants inside its parentheses.
fn call_names_an_ordering(toks: &[Token<'_>], i: usize) -> bool {
    let mut j = i + 1;
    let Some(Tok::Punct('(')) = toks.get(j).map(|t| t.tok) else {
        return false;
    };
    let mut depth = 0i32;
    while let Some(t) = toks.get(j) {
        match t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            Tok::Ident(id) if ORDERINGS.contains(&id) => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

/// Recursively lints every `.rs` file under `root` (skipping `target`,
/// VCS, and hidden directories). Paths in findings are relative to
/// `root`, `/`-separated.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable directories or files).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        out.extend(lint_source(&rel_str, &src));
    }
    Ok(out)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_unsafe_outside_carve_out_is_flagged() {
        let src = "pub fn f(p: *mut u8) { unsafe { *p = 0; } }";
        let findings = lint_source("crates/noc/src/bad.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "unsafe-carve-out");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn unsafe_code_attribute_is_not_the_unsafe_keyword() {
        let src = "#![forbid(unsafe_code)]\npub fn ok() {}\n";
        assert!(lint_source("crates/noc/src/lib.rs", src).is_empty());
    }

    #[test]
    fn seeded_wall_clock_in_sim_crate_is_flagged() {
        let src = "use std::time::Instant;\nfn t() { let _ = Instant::now(); \
                   std::thread::sleep(std::time::Duration::from_millis(1)); }";
        let findings = lint_source("crates/approx/src/bad.rs", src);
        let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.iter().all(|&r| r == "wall-clock"));
        assert_eq!(
            findings.len(),
            3,
            "two Instant hits + one sleep: {findings:?}"
        );
        // The same source is fine where wall clocks are allowed.
        assert!(lint_source("crates/bench/src/bad.rs", src).is_empty());
    }

    #[test]
    fn seeded_raw_atomic_import_in_core_is_flagged() {
        let src = "use std::sync::atomic::AtomicUsize;\n";
        let findings = lint_source("crates/core/src/engine.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "atomic-facade");
        // Facade imports are the sanctioned spelling.
        let good = "use nova_check::sync::atomic::AtomicUsize;\n";
        assert!(lint_source("crates/core/src/engine.rs", good).is_empty());
        // Outside nova-core the rule does not apply.
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_in_carve_out_requires_safety_comment() {
        let bad = "fn f(p: *mut u8) { unsafe { *p = 0; } }";
        let findings = lint_source("crates/core/src/spsc.rs", bad);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "safety-comment");
        let good = "fn f(p: *mut u8) {\n    // SAFETY: p is valid for writes.\n    \
                    unsafe { *p = 0; }\n}";
        assert!(lint_source("crates/core/src/spsc.rs", good).is_empty());
    }

    #[test]
    fn atomic_callsite_requires_ordering_rationale() {
        let bad = "fn f(a: &AtomicBool) { a.store(true, Ordering::SeqCst); }";
        let findings = lint_source("crates/core/src/spsc.rs", bad);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "ordering-rationale");
        let good = "fn f(a: &AtomicBool) {\n    // ordering: Dekker flag, must be SC.\n    \
                    a.store(true, Ordering::SeqCst);\n}";
        assert!(lint_source("crates/core/src/spsc.rs", good).is_empty());
        // Non-atomic `.swap(i, j)` never needs one.
        let slice = "fn f(v: &mut Vec<u32>) { v.swap(0, 1); }";
        assert!(lint_source("crates/core/src/spsc.rs", slice).is_empty());
    }

    #[test]
    fn test_modules_are_exempt_from_comment_discipline() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(a: &AtomicBool) { \
                   a.store(true, Ordering::SeqCst); }\n}";
        assert!(lint_source("crates/core/src/spsc.rs", src).is_empty());
    }

    #[test]
    fn workspace_walk_is_clean() {
        // The real tree must pass its own lint (this is the same check
        // CI runs via the nova-lint binary).
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = lint_workspace(&root).expect("workspace readable");
        assert!(
            findings.is_empty(),
            "nova-lint found violations:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
