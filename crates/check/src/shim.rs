//! Instrumented drop-in stand-ins for the std concurrency primitives.
//!
//! Each type here mirrors the std API surface `spsc.rs` and
//! `serving.rs` use, but routes every operation through the running
//! [`explore`](crate::sched::explore) controller when the calling
//! thread is a model thread. Outside a model run (or while unwinding)
//! the types fall back to a real std "mirror" primitive, so the shim
//! is usable — and testable — in plain builds too; the
//! [`sync`](crate::sync) facade only decides whether production code
//! *names* these types or the std originals.
//!
//! Registration is lazy and per-execution: every instrumented value
//! carries a [`Reg`] slot caching `(epoch, id)`; the first operation in
//! a new execution allocates a fresh model location seeded from the
//! mirror's current value. Stores and RMWs write the model-computed
//! value back to the mirror, so `get_mut`-style exclusive reads (and
//! the abort-unwind fallback path in `Drop` impls) observe the true
//! latest values rather than stale ones — that is what keeps the SPSC
//! ring's cleanup from double-dropping slots when an execution is
//! abandoned mid-flight.

use std::sync::atomic::{AtomicU64 as RawAtomicU64, Ordering as RawOrdering};
use std::sync::Arc;

use crate::sched::{Ctx, Ord as MOrd, CURRENT};

/// The calling thread's model identity, if it is a live model thread.
/// `None` while unwinding: drop handlers on the abort path must not
/// re-enter the controller.
fn model_identity() -> Option<(Arc<Ctx>, usize)> {
    if std::thread::panicking() {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// Converts a std ordering into the model's.
fn conv(order: RawOrdering) -> MOrd {
    match order {
        RawOrdering::Relaxed => MOrd::Relaxed,
        RawOrdering::Acquire => MOrd::Acquire,
        RawOrdering::Release => MOrd::Release,
        RawOrdering::AcqRel => MOrd::AcqRel,
        _ => MOrd::SeqCst,
    }
}

/// Lazy per-execution registration: packs `(epoch, id)` into one word.
/// Model threads are serialized by the controller, so plain load/store
/// suffices.
#[derive(Debug, Default)]
struct Reg(RawAtomicU64);

impl Reg {
    const fn new() -> Self {
        Reg(RawAtomicU64::new(0))
    }

    /// The id registered for `epoch`, if any.
    fn peek(&self, epoch: u64) -> Option<usize> {
        let packed = self.0.load(RawOrdering::Relaxed);
        (packed != 0 && packed >> 32 == (epoch & 0xffff_ffff))
            .then_some((packed & 0xffff_ffff) as usize)
    }

    /// The id for `epoch`, allocating through `alloc` on first use.
    fn resolve(&self, epoch: u64, alloc: impl FnOnce() -> usize) -> usize {
        if let Some(id) = self.peek(epoch) {
            return id;
        }
        let id = alloc();
        self.0.store(
            ((epoch & 0xffff_ffff) << 32) | (id as u64 & 0xffff_ffff),
            RawOrdering::Relaxed,
        );
        id
    }
}

/// Instrumented atomics (`AtomicBool`, `AtomicUsize`, `AtomicU64`).
pub mod atomic {
    use super::{conv, model_identity, Reg};
    use crate::sched::{Op, RmwKind};
    use std::sync::atomic::Ordering;

    macro_rules! shim_int_atomic {
        ($(#[$meta:meta])* $Name:ident, $Std:ty, $ty:ty) => {
            $(#[$meta])*
            pub struct $Name {
                reg: Reg,
                mirror: $Std,
            }

            impl $Name {
                /// A new atomic holding `v`.
                #[must_use]
                pub const fn new(v: $ty) -> Self {
                    Self { reg: Reg::new(), mirror: <$Std>::new(v) }
                }

                fn loc(&self, ctx: &super::Ctx) -> usize {
                    self.reg.resolve(ctx.epoch, || {
                        ctx.new_loc(self.mirror.load(Ordering::Relaxed) as u64)
                    })
                }

                /// Atomic load.
                #[must_use]
                pub fn load(&self, order: Ordering) -> $ty {
                    match model_identity() {
                        Some((ctx, tid)) => {
                            let loc = self.loc(&ctx);
                            ctx.op(tid, Op::Load { loc, ord: conv(order) }).value as $ty
                        }
                        None => self.mirror.load(order),
                    }
                }

                /// Atomic store.
                pub fn store(&self, val: $ty, order: Ordering) {
                    match model_identity() {
                        Some((ctx, tid)) => {
                            let loc = self.loc(&ctx);
                            // The mirror must reflect this store even when
                            // the op aborts the execution: unwind-path
                            // destructors read the mirrors, and a thread
                            // that (say) consumed a ring slot but whose
                            // cursor-advance store aborted would otherwise
                            // tear down against a cursor that still claims
                            // the slot — a double drop.
                            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                || ctx.op(tid, Op::Store { loc, val: val as u64, ord: conv(order) }),
                            ));
                            self.mirror.store(val, Ordering::Relaxed);
                            if let Err(payload) = res {
                                std::panic::resume_unwind(payload);
                            }
                        }
                        None => self.mirror.store(val, order),
                    }
                }

                /// Atomic swap; returns the previous value.
                pub fn swap(&self, val: $ty, order: Ordering) -> $ty {
                    self.rmw(RmwKind::Swap, val, order, |_| val)
                }

                /// Atomic wrapping add; returns the previous value.
                pub fn fetch_add(&self, val: $ty, order: Ordering) -> $ty {
                    self.rmw(RmwKind::Add, val, order, |old| old.wrapping_add(val))
                }

                /// Atomic wrapping subtract; returns the previous value.
                pub fn fetch_sub(&self, val: $ty, order: Ordering) -> $ty {
                    self.rmw(RmwKind::Sub, val, order, |old| old.wrapping_sub(val))
                }

                fn rmw(
                    &self,
                    kind: RmwKind,
                    operand: $ty,
                    order: Ordering,
                    apply: impl Fn($ty) -> $ty,
                ) -> $ty {
                    match model_identity() {
                        Some((ctx, tid)) => {
                            let loc = self.loc(&ctx);
                            // As in `store`: an aborted op still lands on
                            // the mirror so unwind-path teardown sees the
                            // state this thread's control flow committed to.
                            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                || {
                                    ctx.op(
                                        tid,
                                        Op::Rmw {
                                            loc,
                                            kind,
                                            operand: operand as u64,
                                            ord: conv(order),
                                        },
                                    )
                                },
                            ));
                            match res {
                                Ok(r) => {
                                    let old = r.value as $ty;
                                    self.mirror.store(apply(old), Ordering::Relaxed);
                                    old
                                }
                                Err(payload) => {
                                    match kind {
                                        RmwKind::Swap => self.mirror.swap(operand, Ordering::Relaxed),
                                        RmwKind::Add => {
                                            self.mirror.fetch_add(operand, Ordering::Relaxed)
                                        }
                                        RmwKind::Sub => {
                                            self.mirror.fetch_sub(operand, Ordering::Relaxed)
                                        }
                                        RmwKind::CompareExchange { .. } => unreachable!(),
                                    };
                                    std::panic::resume_unwind(payload)
                                }
                            }
                        }
                        None => match kind {
                            RmwKind::Swap => self.mirror.swap(operand, order),
                            RmwKind::Add => self.mirror.fetch_add(operand, order),
                            RmwKind::Sub => self.mirror.fetch_sub(operand, order),
                            RmwKind::CompareExchange { .. } => unreachable!(),
                        },
                    }
                }

                /// Compare-and-exchange; `Ok(previous)` on success.
                ///
                /// # Errors
                ///
                /// The observed (non-matching) value on failure.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    match model_identity() {
                        Some((ctx, tid)) => {
                            let loc = self.loc(&ctx);
                            // As in `store`: keep the mirror in step across
                            // an execution abort.
                            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                || {
                                    ctx.op(
                                        tid,
                                        Op::Rmw {
                                            loc,
                                            kind: RmwKind::CompareExchange {
                                                expected: current as u64,
                                            },
                                            operand: new as u64,
                                            ord: conv(success),
                                        },
                                    )
                                },
                            ));
                            match res {
                                Ok(r) => {
                                    let old = r.value as $ty;
                                    if r.ok {
                                        self.mirror.store(new, Ordering::Relaxed);
                                        Ok(old)
                                    } else {
                                        Err(old)
                                    }
                                }
                                Err(payload) => {
                                    let _ = self.mirror.compare_exchange(
                                        current,
                                        new,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    );
                                    std::panic::resume_unwind(payload)
                                }
                            }
                        }
                        None => self.mirror.compare_exchange(current, new, success, failure),
                    }
                }

                /// Exclusive-access read/write (no ordering needed). Under
                /// a model run this syncs the mirror with the model's
                /// latest store first, joining its release metadata.
                pub fn get_mut(&mut self) -> &mut $ty {
                    if let Some((ctx, tid)) = model_identity() {
                        if let Some(loc) = self.reg.peek(ctx.epoch) {
                            let v = ctx.get_mut_sync(tid, loc) as $ty;
                            *self.mirror.get_mut() = v;
                        }
                    }
                    self.mirror.get_mut()
                }
            }

            impl Default for $Name {
                fn default() -> Self {
                    Self::new(0)
                }
            }

            impl std::fmt::Debug for $Name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_tuple(stringify!($Name))
                        .field(&self.mirror.load(Ordering::Relaxed))
                        .finish()
                }
            }
        };
    }

    shim_int_atomic!(
        /// Instrumented `std::sync::atomic::AtomicUsize`.
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    shim_int_atomic!(
        /// Instrumented `std::sync::atomic::AtomicU64`.
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );

    /// Instrumented `std::sync::atomic::AtomicBool`.
    pub struct AtomicBool {
        reg: Reg,
        mirror: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// A new atomic flag holding `v`.
        #[must_use]
        pub const fn new(v: bool) -> Self {
            Self {
                reg: Reg::new(),
                mirror: std::sync::atomic::AtomicBool::new(v),
            }
        }

        fn loc(&self, ctx: &super::Ctx) -> usize {
            self.reg.resolve(ctx.epoch, || {
                ctx.new_loc(u64::from(self.mirror.load(Ordering::Relaxed)))
            })
        }

        /// Atomic load.
        #[must_use]
        pub fn load(&self, order: Ordering) -> bool {
            match model_identity() {
                Some((ctx, tid)) => {
                    let loc = self.loc(&ctx);
                    ctx.op(
                        tid,
                        Op::Load {
                            loc,
                            ord: conv(order),
                        },
                    )
                    .value
                        != 0
                }
                None => self.mirror.load(order),
            }
        }

        /// Atomic store.
        pub fn store(&self, val: bool, order: Ordering) {
            match model_identity() {
                Some((ctx, tid)) => {
                    let loc = self.loc(&ctx);
                    // As in the integer shims: the mirror takes this
                    // store even when the op aborts the execution, so
                    // unwind-path teardown sees the state this thread's
                    // control flow committed to.
                    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        ctx.op(
                            tid,
                            Op::Store {
                                loc,
                                val: u64::from(val),
                                ord: conv(order),
                            },
                        )
                    }));
                    self.mirror.store(val, Ordering::Relaxed);
                    if let Err(payload) = res {
                        std::panic::resume_unwind(payload);
                    }
                }
                None => self.mirror.store(val, order),
            }
        }

        /// Atomic swap; returns the previous value.
        pub fn swap(&self, val: bool, order: Ordering) -> bool {
            match model_identity() {
                Some((ctx, tid)) => {
                    let loc = self.loc(&ctx);
                    // As in `store`: aborted ops still land on the mirror.
                    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        ctx.op(
                            tid,
                            Op::Rmw {
                                loc,
                                kind: RmwKind::Swap,
                                operand: u64::from(val),
                                ord: conv(order),
                            },
                        )
                    }));
                    self.mirror.store(val, Ordering::Relaxed);
                    match res {
                        Ok(r) => r.value != 0,
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                None => self.mirror.swap(val, order),
            }
        }

        /// Exclusive-access read/write (no ordering needed).
        pub fn get_mut(&mut self) -> &mut bool {
            if let Some((ctx, tid)) = model_identity() {
                if let Some(loc) = self.reg.peek(ctx.epoch) {
                    let v = ctx.get_mut_sync(tid, loc) != 0;
                    *self.mirror.get_mut() = v;
                }
            }
            self.mirror.get_mut()
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("AtomicBool")
                .field(&self.mirror.load(Ordering::Relaxed))
                .finish()
        }
    }
}

/// Instrumented `UnsafeCell` with data-race detection.
pub mod cell {
    use super::{model_identity, Reg};
    use crate::sched::Op;

    /// A race-checked `std::cell::UnsafeCell`: every `get()` under a
    /// model run is reported as a (write) access and vector-clock
    /// checked against the previous access.
    #[derive(Debug)]
    pub struct UnsafeCell<T> {
        reg: Reg,
        inner: std::cell::UnsafeCell<T>,
    }

    impl<T> UnsafeCell<T> {
        /// Wraps `v`.
        pub const fn new(v: T) -> Self {
            Self {
                reg: Reg::new(),
                inner: std::cell::UnsafeCell::new(v),
            }
        }

        /// The raw pointer to the wrapped value. Under a model run this
        /// is a scheduling point and a race-detector access.
        pub fn get(&self) -> *mut T {
            if let Some((ctx, tid)) = model_identity() {
                let cell = self.reg.resolve(ctx.epoch, || ctx.new_cell());
                ctx.op(tid, Op::CellAccess { cell });
            }
            self.inner.get()
        }

        /// Exclusive access (no instrumentation needed: `&mut self`).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }
    }

    /// A safely-shareable probe for the race detector.
    ///
    /// [`touch`](Self::touch) reports an unsynchronized (write) access
    /// to the model exactly like [`UnsafeCell::get`], but the probe
    /// holds no data, so it is `Sync` without any unsafe impl — the
    /// checker's own tests use it to prove the race detector fires,
    /// and it can model raw-pointer accesses that live outside an
    /// `UnsafeCell`.
    #[derive(Debug, Default)]
    pub struct RaceProbe {
        reg: Reg,
    }

    impl RaceProbe {
        /// A new probe (its location registers lazily per execution).
        #[must_use]
        pub const fn new() -> Self {
            Self { reg: Reg::new() }
        }

        /// Reports one unsynchronized access at this point in the
        /// calling thread's program order. Outside a model run: no-op.
        pub fn touch(&self) {
            if let Some((ctx, tid)) = model_identity() {
                let cell = self.reg.resolve(ctx.epoch, || ctx.new_cell());
                ctx.op(tid, Op::CellAccess { cell });
            }
        }
    }
}

/// Instrumented `std::thread` subset: `spawn`/`join`, `current`,
/// `park`/`unpark`, `yield_now`.
pub mod thread {
    use super::model_identity;
    use crate::sched::{self, Op};
    use std::sync::{Arc, Mutex};

    /// A thread handle: a model tid inside a model run, a real
    /// `std::thread::Thread` outside one.
    #[derive(Debug, Clone)]
    pub enum Thread {
        /// A model thread (interleaving-explored).
        Model {
            /// The model thread id.
            tid: usize,
        },
        /// A real OS thread (outside any model run).
        Os(std::thread::Thread),
    }

    impl Thread {
        /// Wakes the thread (std `unpark` semantics: one sticky token).
        pub fn unpark(&self) {
            match self {
                Thread::Model { tid } => {
                    if let Some((ctx, me)) = model_identity() {
                        ctx.op(me, Op::Unpark { target: *tid });
                    }
                    // No identity: the execution is unwinding/aborted —
                    // nobody is left to wake.
                }
                Thread::Os(t) => t.unpark(),
            }
        }
    }

    /// The calling thread's handle.
    #[must_use]
    pub fn current() -> Thread {
        match model_identity() {
            Some((_, tid)) => Thread::Model { tid },
            None => Thread::Os(std::thread::current()),
        }
    }

    /// Blocks until unparked (model: until the token is granted).
    pub fn park() {
        match model_identity() {
            Some((ctx, tid)) => {
                ctx.op(tid, Op::Park);
            }
            None => std::thread::park(),
        }
    }

    /// A scheduling point (model) / `std::thread::yield_now` (plain).
    pub fn yield_now() {
        match model_identity() {
            Some((ctx, tid)) => {
                ctx.op(tid, Op::Yield);
            }
            None => std::thread::yield_now(),
        }
    }

    /// (controller, model thread id, result slot) for a model-spawned
    /// thread.
    type ModelJoin<T> = Option<(Arc<sched::Ctx>, usize, Arc<Mutex<Option<T>>>)>;

    /// Join handle for a spawned thread.
    pub struct JoinHandle<T> {
        model: ModelJoin<T>,
        os: Option<std::thread::JoinHandle<T>>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread and returns its result (std contract:
        /// `Err` when the thread panicked).
        ///
        /// # Panics
        ///
        /// Panics if the model result slot is poisoned (cannot happen:
        /// the slot is only locked around a plain assignment).
        pub fn join(self) -> std::thread::Result<T> {
            match (self.model, self.os) {
                (Some((ctx, target, slot)), _) => {
                    let me = model_identity()
                        .map(|(_, tid)| tid)
                        .expect("model JoinHandle joined outside its model run");
                    ctx.op(me, Op::Join { target });
                    match slot.lock().expect("join slot poisoned").take() {
                        Some(v) => Ok(v),
                        None => Err(Box::new("model thread panicked before producing a value")),
                    }
                }
                (None, Some(h)) => h.join(),
                (None, None) => unreachable!("JoinHandle with no backing thread"),
            }
        }
    }

    /// Spawns a thread. Inside a model run the child becomes a model
    /// thread whose every sync op is a scheduling point.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match model_identity() {
            Some((ctx, me)) => {
                let tid = ctx.register_child(me);
                let slot = Arc::new(Mutex::new(None));
                let slot2 = Arc::clone(&slot);
                let ctx2 = Arc::clone(&ctx);
                let h = std::thread::spawn(move || {
                    sched::thread_main(Arc::clone(&ctx2), tid, move || {
                        let v = f();
                        *slot2.lock().expect("join slot poisoned") = Some(v);
                    });
                });
                ctx.adopt_handle(h);
                JoinHandle {
                    model: Some((ctx, tid, slot)),
                    os: None,
                }
            }
            None => JoinHandle {
                model: None,
                os: Some(std::thread::spawn(f)),
            },
        }
    }
}

/// Instrumented `std::sync::Mutex` (lock/unlock are scheduling points
/// and happens-before edges).
pub mod mutex {
    use super::{model_identity, Reg};
    use crate::sched::{Ctx, Op};
    use std::convert::Infallible;
    use std::sync::Arc;

    /// A model-aware mutex wrapping `std::sync::Mutex`.
    pub struct Mutex<T> {
        reg: Reg,
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Wraps `v`.
        pub const fn new(v: T) -> Self {
            Self {
                reg: Reg::new(),
                inner: std::sync::Mutex::new(v),
            }
        }

        /// Locks. Under a model run, blocks at the controller while any
        /// other model thread holds the model mutex (the inner std lock
        /// is then uncontended by construction).
        ///
        /// # Errors
        ///
        /// Never — poisoning is absorbed so abandoned model executions
        /// cannot wedge later ones. The `Result` keeps the std calling
        /// shape (`.lock().expect(..)`).
        pub fn lock(&self) -> Result<MutexGuard<'_, T>, Infallible> {
            let model = model_identity().map(|(ctx, tid)| {
                let mid = self.reg.resolve(ctx.epoch, || ctx.new_mutex());
                ctx.op(tid, Op::Lock { mid });
                (ctx, tid, mid)
            });
            let inner = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            Ok(MutexGuard {
                inner: Some(inner),
                model,
            })
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Self::new(T::default())
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self.inner.try_lock() {
                Ok(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
                Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
            }
        }
    }

    /// Guard returned by [`Mutex::lock`]; dropping unlocks (and emits
    /// the model unlock edge).
    pub struct MutexGuard<'a, T> {
        inner: Option<std::sync::MutexGuard<'a, T>>,
        model: Option<(Arc<Ctx>, usize, usize)>,
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard taken")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the real lock first so the next model thread the
            // controller grants cannot block on it.
            drop(self.inner.take());
            if let Some((ctx, tid, mid)) = self.model.take() {
                if !std::thread::panicking() {
                    ctx.op(tid, Op::Unlock { mid });
                }
                // While unwinding (abort), the model edge is dropped —
                // the execution is already abandoned.
            }
        }
    }
}
