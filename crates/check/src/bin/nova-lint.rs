//! `nova-lint` — walks a workspace tree and fails (exit 1) on any
//! violation of the invariants in [`nova_check::lint`].
//!
//! ```text
//! nova-lint [ROOT]     # default ROOT: current directory
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    let findings = match nova_check::lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("nova-lint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        println!("nova-lint: clean ({})", root.display());
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    eprintln!("nova-lint: {} violation(s)", findings.len());
    ExitCode::FAILURE
}
