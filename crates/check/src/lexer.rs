//! A minimal, dependency-free Rust lexer for `nova-lint`.
//!
//! Good enough for source-level linting: it separates identifiers,
//! comments, string/char literals, numbers, and punctuation, and it
//! tracks line numbers. Keywords are just identifiers here — the lint
//! rules match on their text. Crucially, identifiers are maximal
//! (`unsafe_code` is one token, not `unsafe` + `_code`) and keyword
//! matching never fires inside strings or comments.

/// A lexed token's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tok<'a> {
    /// Identifier or keyword (maximal run of `XID`-ish chars).
    Ident(&'a str),
    /// `// …` (text includes the slashes).
    LineComment(&'a str),
    /// `/* … */` (possibly nested, text includes delimiters).
    BlockComment(&'a str),
    /// Any string / raw string / byte string / char literal.
    Literal,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime(&'a str),
    /// A single punctuation character (`(`, `:`, `#`, …).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// The payload.
    pub tok: Tok<'a>,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream. Malformed input never panics — the
/// lexer just degrades to single-char punctuation tokens.
#[must_use]
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    // Counts newlines in src[a..b] into `line`.
    fn advance_lines(src: &[u8], a: usize, b: usize, line: &mut u32) {
        *line += src[a..b].iter().filter(|&&c| c == b'\n').count() as u32;
    }

    while i < n {
        let c = src[i..].chars().next().unwrap_or('\0');
        let start = i;
        let start_line = line;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += c.len_utf8(),
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = src[i..].find('\n').map_or(n, |o| i + o);
                toks.push(Token {
                    tok: Tok::LineComment(&src[i..end]),
                    line: start_line,
                });
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1u32;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                advance_lines(bytes, i, j, &mut line);
                toks.push(Token {
                    tok: Tok::BlockComment(&src[start..j]),
                    line: start_line,
                });
                i = j;
            }
            '"' => {
                i = skip_string(src, i);
                advance_lines(bytes, start, i, &mut line);
                toks.push(Token {
                    tok: Tok::Literal,
                    line: start_line,
                });
            }
            'r' | 'b' if starts_raw_or_byte_string(src, i) => {
                i = skip_raw_or_byte(src, i);
                advance_lines(bytes, start, i, &mut line);
                toks.push(Token {
                    tok: Tok::Literal,
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime or char literal.
                let rest = &src[i + 1..];
                let mut chars = rest.chars();
                match chars.next() {
                    Some(c2) if is_ident_start(c2) => {
                        // Scan the ident; a trailing quote makes it a
                        // char literal ('a'), otherwise a lifetime ('a).
                        let mut j = i + 1 + c2.len_utf8();
                        while let Some(c3) = src[j..].chars().next() {
                            if is_ident_continue(c3) {
                                j += c3.len_utf8();
                            } else {
                                break;
                            }
                        }
                        if bytes.get(j) == Some(&b'\'') {
                            toks.push(Token {
                                tok: Tok::Literal,
                                line: start_line,
                            });
                            i = j + 1;
                        } else {
                            toks.push(Token {
                                tok: Tok::Lifetime(&src[i..j]),
                                line: start_line,
                            });
                            i = j;
                        }
                    }
                    Some('\\') => {
                        // Escaped char literal: skip to closing quote.
                        let mut j = i + 2;
                        // The escape body is at most a few chars; find
                        // the next unescaped quote.
                        while j < n && bytes[j] != b'\'' {
                            j += if bytes[j] == b'\\' { 2 } else { 1 };
                        }
                        toks.push(Token {
                            tok: Tok::Literal,
                            line: start_line,
                        });
                        i = (j + 1).min(n);
                    }
                    Some(c2) => {
                        // Plain char literal like '(' or '7'.
                        let mut j = i + 1 + c2.len_utf8();
                        if bytes.get(j) == Some(&b'\'') {
                            j += 1;
                        }
                        toks.push(Token {
                            tok: Tok::Literal,
                            line: start_line,
                        });
                        i = j;
                    }
                    None => i = n,
                }
            }
            c if is_ident_start(c) => {
                let mut j = i + c.len_utf8();
                while let Some(c2) = src[j..].chars().next() {
                    if is_ident_continue(c2) {
                        j += c2.len_utf8();
                    } else {
                        break;
                    }
                }
                toks.push(Token {
                    tok: Tok::Ident(&src[i..j]),
                    line: start_line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                // Numbers can contain `_`, `.`, hex letters, suffixes —
                // consume the alphanumeric run (lint never inspects it).
                while let Some(c2) = src[j..].chars().next() {
                    if c2.is_alphanumeric() || c2 == '_' || c2 == '.' {
                        j += c2.len_utf8();
                    } else {
                        break;
                    }
                }
                toks.push(Token {
                    tok: Tok::Num,
                    line: start_line,
                });
                i = j;
            }
            c => {
                toks.push(Token {
                    tok: Tok::Punct(c),
                    line: start_line,
                });
                i += c.len_utf8();
            }
        }
    }
    toks
}

/// Whether `src[i..]` starts a raw/byte string (`r"`, `r#"`, `br"`,
/// `b"`, `b'`…). A bare `r`/`b` identifier does not match.
fn starts_raw_or_byte_string(src: &str, i: usize) -> bool {
    let rest = &src.as_bytes()[i..];
    match rest.first() {
        Some(b'r') => {
            let mut j = 1;
            while rest.get(j) == Some(&b'#') {
                j += 1;
            }
            rest.get(j) == Some(&b'"')
        }
        Some(b'b') => match rest.get(1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => {
                let mut j = 2;
                while rest.get(j) == Some(&b'#') {
                    j += 1;
                }
                rest.get(j) == Some(&b'"')
            }
            _ => false,
        },
        _ => false,
    }
}

/// Skips a plain (escaped) string starting at the opening quote.
/// Returns the index one past the closing quote.
fn skip_string(src: &str, i: usize) -> usize {
    let bytes = src.as_bytes();
    let n = bytes.len();
    let mut j = i + 1;
    while j < n {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// Skips a raw/byte/raw-byte string or byte char starting at `i`.
fn skip_raw_or_byte(src: &str, i: usize) -> usize {
    let bytes = src.as_bytes();
    let n = bytes.len();
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) == Some(&b'\'') {
        // Byte char literal b'x' / b'\n'.
        j += 1;
        while j < n && bytes[j] != b'\'' {
            j += if bytes[j] == b'\\' { 2 } else { 1 };
        }
        return (j + 1).min(n);
    }
    let raw = bytes.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(bytes.get(j), Some(&b'"'));
    j += 1;
    if !raw {
        // Plain (byte) string: escapes apply.
        while j < n {
            match bytes[j] {
                b'\\' => j += 2,
                b'"' => return j + 1,
                _ => j += 1,
            }
        }
        return n;
    }
    // Raw string: ends at `"` followed by `hashes` hashes.
    while j < n {
        if bytes[j] == b'"' {
            let mut k = 0usize;
            while k < hashes && bytes.get(j + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return j + 1 + hashes;
            }
        }
        j += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn identifiers_are_maximal() {
        // `unsafe_code` must NOT produce an `unsafe` token.
        assert_eq!(
            idents("#![forbid(unsafe_code)] unsafe fn f() {}"),
            vec!["forbid", "unsafe_code", "unsafe", "fn", "f"]
        );
    }

    #[test]
    fn strings_and_comments_hide_keywords() {
        let src = r##"
            let s = "unsafe Instant";
            let r = r#"thread::sleep"#;
            // unsafe in a line comment
            /* Instant in a block comment */
            let c = 'u';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe"));
        assert!(!ids.contains(&"Instant"));
        assert!(!ids.contains(&"sleep"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'a'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lifetime(_)))
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let lits = toks
            .iter()
            .filter(|t| matches!(t.tok, Tok::Literal))
            .count();
        assert_eq!(lits, 1, "'a' is a char literal");
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn comments_are_captured_with_text() {
        let toks = lex("// SAFETY: fine\nunsafe {}");
        assert!(matches!(toks[0].tok, Tok::LineComment(c) if c.contains("SAFETY")));
        assert_eq!(toks[0].line, 1);
        assert!(matches!(toks[1].tok, Tok::Ident("unsafe")));
        assert_eq!(toks[1].line, 2);
    }
}
