//! nova-check — correctness tooling for the NOVA workspace.
//!
//! Two halves:
//!
//! - a **deterministic concurrency model checker**
//!   ([`sched::explore`] / [`sched::model`]) driving instrumented
//!   stand-ins for the std sync primitives ([`shim`], imported by
//!   production code through the cfg-selected [`sync`] facade) — a
//!   bounded-DFS interleaving explorer with a C11-ish operational
//!   memory model, state-hash pruning, seeded-random and exact-replay
//!   schedules, deadlock (lost-wakeup) detection, and vector-clock data
//!   races on `UnsafeCell` accesses;
//! - **`nova-lint`** ([`lint`], plus the `nova-lint` binary), a
//!   dependency-free source scanner that mechanically enforces the
//!   workspace's prose invariants: `unsafe` stays inside the audited
//!   carve-out, deterministic crates never touch wall clocks, the
//!   serving core names atomics only through the facade, and every
//!   `unsafe` block / atomic callsite carries its `SAFETY:` /
//!   `ordering:` rationale.
//!
//! Model tests for the real `nova::spsc` protocols live in
//! `crates/core/tests/model.rs` and compile under
//! `RUSTFLAGS="--cfg nova_check_model"`; the checker's own self-tests
//! (including the deliberately-broken ring it must catch) run in plain
//! builds because the shim instruments through a thread-local, not the
//! cfg.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod lexer;
pub mod lint;
pub mod sched;
pub mod shim;
pub mod sync;

pub use sched::{explore, model, ModelOptions, Report, Strategy, Violation, ViolationKind};
