//! The deterministic interleaving explorer.
//!
//! [`explore`] runs a test closure many times. Each run ("execution")
//! spawns the closure as *model thread 0* on a real OS thread, but every
//! operation on the instrumented [`shim`](crate::shim) types hands
//! control back to a controller that serializes the whole program: at
//! any instant exactly one model thread is between operations. Which
//! thread advances next — and, on relaxed-memory loads, *which store a
//! load observes* — are explicit **choice points**, and the controller
//! drives a bounded depth-first search over the resulting choice tree
//! (with optional state-hash pruning, a per-execution step cap, and an
//! overall execution budget).
//!
//! The memory model is an operational C11-ish approximation: every
//! atomic location keeps its full store history; per-thread *view
//! floors* enforce coherence; release stores snapshot the storer's
//! vector clock (and view) which acquire loads join back in; RMWs read
//! the modification-order-latest store and extend release sequences;
//! `SeqCst` operations additionally go through a global per-location
//! floor so that store→load ("Dekker") patterns behave as sequentially
//! consistent. Plain-memory accesses through the shim
//! [`UnsafeCell`](crate::shim::cell::UnsafeCell) are checked for data
//! races with vector clocks.
//!
//! Violations the explorer reports: model panics (failed assertions in
//! the closure), **deadlock** (every live thread parked or blocked —
//! the shape a lost wakeup takes), and **data races** on cell accesses.
//! Every violation carries the choice list that produced it, so it can
//! be replayed deterministically with [`Strategy::Replay`].

use std::collections::HashSet;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::clock::VClock;

/// Memory ordering as the model sees it (mirrors the std orderings the
/// shim types accept).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ord {
    /// `Ordering::Relaxed` — coherence only.
    Relaxed,
    /// `Ordering::Acquire` — joins the release clock of the store read.
    Acquire,
    /// `Ordering::Release` — publishes the current clock with the store.
    Release,
    /// `Ordering::AcqRel` — both halves (RMWs).
    AcqRel,
    /// `Ordering::SeqCst` — acquire+release plus the global SC floor.
    SeqCst,
}

impl Ord {
    fn acquires(self) -> bool {
        matches!(self, Ord::Acquire | Ord::AcqRel | Ord::SeqCst)
    }
    fn releases(self) -> bool {
        matches!(self, Ord::Release | Ord::AcqRel | Ord::SeqCst)
    }
}

/// The read-modify-write flavors the shim atomics expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwKind {
    /// `swap`: the new value replaces the old unconditionally.
    Swap,
    /// `fetch_add` (wrapping).
    Add,
    /// `fetch_sub` (wrapping).
    Sub,
    /// `compare_exchange`: writes only when the current value matches.
    CompareExchange {
        /// The expected current value.
        expected: u64,
    },
}

/// One operation a model thread submits to the controller.
#[derive(Debug, Clone)]
pub enum Op {
    /// First op of every thread — a scheduling point before user code.
    Begin,
    /// Atomic load from `loc`.
    Load {
        /// Location id.
        loc: usize,
        /// Ordering.
        ord: Ord,
    },
    /// Atomic store to `loc`.
    Store {
        /// Location id.
        loc: usize,
        /// Value stored.
        val: u64,
        /// Ordering.
        ord: Ord,
    },
    /// Atomic read-modify-write on `loc`.
    Rmw {
        /// Location id.
        loc: usize,
        /// Which RMW.
        kind: RmwKind,
        /// Operand (new value / addend / CAS replacement).
        operand: u64,
        /// Ordering (failure ordering of a CAS is folded in).
        ord: Ord,
    },
    /// A plain-memory access through a shim `UnsafeCell` (treated as a
    /// write for race detection).
    CellAccess {
        /// Cell id.
        cell: usize,
    },
    /// `thread::park` — blocks until this thread's token is set.
    Park,
    /// `Thread::unpark` on model thread `target`.
    Unpark {
        /// Thread id to wake.
        target: usize,
    },
    /// `JoinHandle::join` on model thread `target` — blocks until it
    /// finishes, then joins its final clock.
    Join {
        /// Thread id to wait for.
        target: usize,
    },
    /// Lock shim mutex `mid` — blocks while held.
    Lock {
        /// Mutex id.
        mid: usize,
    },
    /// Unlock shim mutex `mid`.
    Unlock {
        /// Mutex id.
        mid: usize,
    },
    /// An explicit scheduling point with no memory effect.
    Yield,
}

/// Whether thread `tid`'s pending `op` can execute right now.
fn op_runnable(sh: &Shared, tid: usize, op: &Op) -> bool {
    match *op {
        Op::Park => sh.threads[tid].park_token,
        Op::Join { target } => matches!(sh.threads[target].status, Status::Finished),
        Op::Lock { mid } => !sh.mem.mutexes[mid].locked,
        _ => true,
    }
}

/// What the controller hands back after executing an op.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpResult {
    /// Loaded / previous value (loads, RMWs).
    pub value: u64,
    /// CAS success flag.
    pub ok: bool,
    /// New thread id (spawn) — carried via `value` instead; reserved.
    pub aborted: bool,
}

/// A store in a location's modification order.
#[derive(Debug, Clone)]
struct StoreRec {
    value: u64,
    /// Release metadata: the storing thread's clock and view snapshot,
    /// present when the store (or the release sequence it continues)
    /// had release semantics.
    release: Option<(VClock, Vec<usize>)>,
}

/// One atomic location: its full modification order.
#[derive(Debug, Clone, Default)]
struct LocState {
    stores: Vec<StoreRec>,
}

/// One shim `UnsafeCell`: the clock of its last access (every access is
/// treated as a write — the SPSC slots are moved in and out).
#[derive(Debug, Clone, Default)]
struct CellState {
    last: VClock,
    last_tid: Option<usize>,
}

#[derive(Debug, Clone, Default)]
struct MutexRec {
    locked: bool,
    release: VClock,
    view: Vec<usize>,
}

/// The whole model memory.
#[derive(Debug, Default)]
struct ModelState {
    locs: Vec<LocState>,
    cells: Vec<CellState>,
    mutexes: Vec<MutexRec>,
    /// Per-location SC floor: the modification-order index every SeqCst
    /// access must be coherent with.
    sc_view: Vec<usize>,
}

/// Scheduling status of a model thread.
#[derive(Debug)]
enum Status {
    /// Between ops (running user code) — the controller must wait.
    Running,
    /// Submitted an op, waiting for the grant.
    Ready(Op),
    /// Done (normally or by abort); `panic_msg` set on a real panic.
    Finished,
}

struct ThreadRec {
    status: Status,
    /// Vector clock (happens-before knowledge).
    clock: VClock,
    /// Per-location coherence floor into the modification order.
    view: Vec<usize>,
    /// `unpark` token (std semantics: one token, sticky until consumed).
    park_token: bool,
    /// Clock/view snapshots carried by the last unpark (joined on wake).
    park_clock: VClock,
    park_view: Vec<usize>,
    /// Result slot for the granted op.
    result: OpResult,
    granted: bool,
    panic_msg: Option<String>,
}

impl ThreadRec {
    fn new() -> Self {
        ThreadRec {
            status: Status::Running,
            clock: VClock::new(),
            view: Vec::new(),
            park_token: false,
            park_clock: VClock::new(),
            park_view: Vec::new(),
            result: OpResult::default(),
            granted: false,
            panic_msg: None,
        }
    }
}

/// State shared between the controller and the model threads.
struct Shared {
    threads: Vec<ThreadRec>,
    mem: ModelState,
    /// Set when the controller abandons the execution: every grant then
    /// carries `aborted = true` and the shim unwinds with [`AbortToken`].
    aborting: bool,
    /// OS join handles of spawned model threads (drained at the end).
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// The per-execution context the shim talks to (thread-local, see
/// [`crate::shim`]).
pub struct Ctx {
    shared: Mutex<Shared>,
    cv: Condvar,
    /// Execution epoch — lets shim types lazily re-register per run.
    pub(crate) epoch: u64,
}

/// Global epoch counter (shim `Reg` caches `(epoch, loc)` pairs).
pub(crate) static EPOCH: AtomicU64 = AtomicU64::new(1);

/// Panic payload for abandoned executions; the panic hook stays quiet
/// about it and `thread_main` swallows it.
pub(crate) struct AbortToken;

fn install_quiet_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<AbortToken>().is_none() {
                prev(info);
            }
        }));
    });
}

impl Ctx {
    /// Registers a fresh atomic location holding `init`. Not a
    /// scheduling point — construction is not observable behavior.
    pub(crate) fn new_loc(&self, init: u64) -> usize {
        let mut sh = self.shared.lock().expect("model state poisoned");
        sh.mem.locs.push(LocState {
            stores: vec![StoreRec {
                value: init,
                release: None,
            }],
        });
        sh.mem.sc_view.push(0);
        sh.mem.locs.len() - 1
    }

    /// Registers a fresh cell for race checking.
    pub(crate) fn new_cell(&self) -> usize {
        let mut sh = self.shared.lock().expect("model state poisoned");
        sh.mem.cells.push(CellState::default());
        sh.mem.cells.len() - 1
    }

    /// Registers a fresh shim mutex.
    pub(crate) fn new_mutex(&self) -> usize {
        let mut sh = self.shared.lock().expect("model state poisoned");
        sh.mem.mutexes.push(MutexRec::default());
        sh.mem.mutexes.len() - 1
    }

    /// Submits `op` for model thread `tid` and blocks until the
    /// controller grants it. Unwinds with [`AbortToken`] when the
    /// execution was abandoned.
    pub(crate) fn op(&self, tid: usize, op: Op) -> OpResult {
        let mut sh = self.shared.lock().expect("model state poisoned");
        if sh.aborting {
            drop(sh);
            panic::panic_any(AbortToken);
        }
        sh.threads[tid].granted = false;
        sh.threads[tid].status = Status::Ready(op);
        self.cv.notify_all();
        while !sh.threads[tid].granted {
            sh = self.cv.wait(sh).expect("model state poisoned");
        }
        let res = sh.threads[tid].result;
        sh.threads[tid].status = Status::Running;
        drop(sh);
        if res.aborted {
            panic::panic_any(AbortToken);
        }
        res
    }

    /// Registers the root model thread record (tid 0).
    pub(crate) fn register_root(&self) -> usize {
        let mut sh = self.shared.lock().expect("model state poisoned");
        sh.threads.push(ThreadRec::new());
        sh.threads.len() - 1
    }

    /// Registers a child model thread; the spawn edge hands the child
    /// the parent's clock and view. Called by the shim's
    /// `thread::spawn` *before* the OS thread starts.
    pub(crate) fn register_child(&self, parent: usize) -> usize {
        let mut sh = self.shared.lock().expect("model state poisoned");
        let mut rec = ThreadRec::new();
        rec.clock = sh.threads[parent].clock.clone();
        rec.view = sh.threads[parent].view.clone();
        sh.threads.push(rec);
        sh.threads.len() - 1
    }

    /// Records an OS join handle for cleanup at execution end.
    pub(crate) fn adopt_handle(&self, h: std::thread::JoinHandle<()>) {
        let mut sh = self.shared.lock().expect("model state poisoned");
        sh.handles.push(h);
    }

    /// Marks `tid` finished (normally or after catching a panic).
    pub(crate) fn finish(&self, tid: usize, panic_msg: Option<String>) {
        let mut sh = self.shared.lock().expect("model state poisoned");
        sh.threads[tid].status = Status::Finished;
        sh.threads[tid].panic_msg = panic_msg;
        self.cv.notify_all();
    }

    /// `get_mut`-style access: joins the release metadata of the latest
    /// store so exclusive access after a real-world synchronization
    /// edge (e.g. `Arc::drop`'s refcount) does not report stale races.
    pub(crate) fn get_mut_sync(&self, tid: usize, loc: usize) -> u64 {
        let mut sh = self.shared.lock().expect("model state poisoned");
        let idx = sh.mem.locs[loc].stores.len() - 1;
        let (val, rel) = {
            let rec = &sh.mem.locs[loc].stores[idx];
            (rec.value, rec.release.clone())
        };
        let t = &mut sh.threads[tid];
        bump_view(&mut t.view, loc, idx);
        if let Some((clk, view)) = rel {
            t.clock.join(&clk);
            join_view(&mut t.view, &view);
        }
        val
    }
}

fn bump_view(view: &mut Vec<usize>, loc: usize, idx: usize) {
    if view.len() <= loc {
        view.resize(loc + 1, 0);
    }
    if view[loc] < idx {
        view[loc] = idx;
    }
}

fn join_view(view: &mut Vec<usize>, other: &[usize]) {
    if view.len() < other.len() {
        view.resize(other.len(), 0);
    }
    for (mine, &theirs) in view.iter_mut().zip(other) {
        *mine = (*mine).max(theirs);
    }
}

/// What went wrong in an execution.
#[derive(Debug, Clone)]
pub enum ViolationKind {
    /// Every live thread is parked or blocked — a lost wakeup,
    /// lock cycle, or join-on-stuck-thread.
    Deadlock,
    /// A model thread panicked (assertion failure in the closure).
    Panic {
        /// Which model thread.
        thread: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// Two unordered accesses to the same shim `UnsafeCell`.
    DataRace {
        /// Cell id.
        cell: usize,
        /// The racing threads.
        threads: (usize, usize),
    },
}

/// A failed execution: what happened plus the choices that reproduce it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The failure class.
    pub kind: ViolationKind,
    /// The choice list — feed to [`Strategy::Replay`] to reproduce.
    pub choices: Vec<u32>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ViolationKind::Deadlock => write!(f, "deadlock: every live thread parked/blocked")?,
            ViolationKind::Panic { thread, message } => {
                write!(f, "model thread {thread} panicked: {message}")?;
            }
            ViolationKind::DataRace { cell, threads } => write!(
                f,
                "data race on cell {} between threads {} and {}",
                cell, threads.0, threads.1
            )?,
        }
        write!(f, " [replay: {:?}]", self.choices)
    }
}

/// How the explorer picks branches.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Systematic bounded DFS over the whole choice tree (default).
    Dfs,
    /// Seeded pseudo-random schedules (for huge trees): same seed, same
    /// schedules.
    Random {
        /// PRNG seed.
        seed: u64,
    },
    /// Replay one exact choice list (from [`Violation::choices`]).
    Replay(Vec<u32>),
}

/// Exploration knobs.
#[derive(Debug, Clone)]
pub struct ModelOptions {
    /// Hard cap on executions (env `NOVA_CHECK_BUDGET` overrides).
    pub max_executions: usize,
    /// Per-execution cap on scheduling steps; beyond it the execution
    /// is truncated (counted, not a violation).
    pub max_steps: usize,
    /// Branch strategy.
    pub strategy: Strategy,
    /// State-hash subtree pruning (DFS only).
    pub prune: bool,
}

impl Default for ModelOptions {
    fn default() -> Self {
        let budget = std::env::var("NOVA_CHECK_BUDGET")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(20_000);
        ModelOptions {
            max_executions: budget,
            max_steps: 2_000,
            strategy: Strategy::Dfs,
            prune: true,
        }
    }
}

/// What an [`explore`] run found.
#[derive(Debug)]
pub struct Report {
    /// Executions actually run.
    pub executions: usize,
    /// True when the DFS closed the whole (bounded) tree within budget.
    pub exhausted: bool,
    /// Subtrees skipped because their state hash was already seen.
    pub pruned: usize,
    /// Executions cut off by `max_steps`.
    pub truncated: usize,
    /// Longest schedule seen (steps).
    pub deepest: usize,
    /// FNV hash over every schedule explored, in order — two runs with
    /// the same seed/options produce the same value (determinism pin).
    pub schedule_hash: u64,
    /// The first violation, if any (exploration stops on it).
    pub violation: Option<Violation>,
}

/// The DFS/random/replay chooser.
struct Explorer {
    strategy: Strategy,
    /// DFS stack: (taken, fanout) per choice point of the current run.
    stack: Vec<(u32, u32)>,
    /// Position in `stack` during the current execution.
    cursor: usize,
    rng: u64,
    seen: HashSet<u64>,
}

impl Explorer {
    fn new(strategy: Strategy) -> Self {
        let rng = match strategy {
            Strategy::Random { seed } => seed ^ 0x9e37_79b9_7f4a_7c15,
            _ => 0,
        };
        Explorer {
            strategy,
            stack: Vec::new(),
            cursor: 0,
            rng,
            seen: HashSet::new(),
        }
    }

    fn next_rand(&mut self) -> u64 {
        // splitmix64 step — deterministic, dependency-free.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Picks a branch at a choice point with `n` alternatives.
    fn choose(&mut self, n: u32) -> u32 {
        debug_assert!(n > 0);
        let taken = match &self.strategy {
            Strategy::Dfs => {
                if self.cursor < self.stack.len() {
                    // Replaying the backtracked prefix.
                    let (taken, fanout) = &mut self.stack[self.cursor];
                    *fanout = n; // fanout may legally differ only past a violation
                    (*taken).min(n - 1)
                } else {
                    self.stack.push((0, n));
                    0
                }
            }
            Strategy::Random { .. } => {
                let t = (self.next_rand() % u64::from(n)) as u32;
                self.stack.push((t, n));
                t
            }
            Strategy::Replay(choices) => {
                let t = choices.get(self.cursor).copied().unwrap_or(0).min(n - 1);
                self.stack.push((t, n));
                t
            }
        };
        self.cursor += 1;
        taken
    }

    /// True while this execution is past every backtracked choice — the
    /// only region where pruning and `seen` insertion are sound.
    fn on_fresh_frontier(&self) -> bool {
        match self.strategy {
            Strategy::Dfs => self.cursor >= self.stack.len(),
            _ => false,
        }
    }

    /// Advances to the next schedule. Returns false when the tree is
    /// exhausted (DFS) or after every non-DFS run (caller loops on
    /// budget instead).
    fn backtrack(&mut self) -> bool {
        match &self.strategy {
            Strategy::Dfs => {
                while let Some((taken, fanout)) = self.stack.pop() {
                    if taken + 1 < fanout {
                        self.stack.push((taken + 1, fanout));
                        self.cursor = 0;
                        return true;
                    }
                }
                false
            }
            Strategy::Random { .. } => {
                self.stack.clear();
                self.cursor = 0;
                true
            }
            Strategy::Replay(_) => false,
        }
    }
}

thread_local! {
    pub(crate) static CURRENT: std::cell::RefCell<Option<(std::sync::Arc<Ctx>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The model-thread entry wrapper: binds the thread-local identity,
/// emits `Begin`, runs `body`, swallows [`AbortToken`], records panics.
pub(crate) fn thread_main<F: FnOnce()>(ctx: Arc<Ctx>, tid: usize, body: F) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&ctx), tid)));
    // Begin sits inside the catch: an abort raised while waiting for
    // the very first grant must still reach `finish`.
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        ctx.op(tid, Op::Begin);
        body();
    }));
    CURRENT.with(|c| *c.borrow_mut() = None);
    match outcome {
        Ok(()) => ctx.finish(tid, None),
        Err(payload) => {
            if payload.downcast_ref::<AbortToken>().is_some() {
                ctx.finish(tid, None);
            } else {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".into());
                ctx.finish(tid, Some(msg));
            }
        }
    }
}

fn fnv1a(mut hash: u64, x: u64) -> u64 {
    hash ^= x;
    hash.wrapping_mul(0x0000_0100_0000_01b3)
}

/// Small numeric fingerprint of a pending op (feeds the state hash).
fn op_code(op: &Op) -> u64 {
    match *op {
        Op::Begin => 1,
        Op::Load { loc, ord } => fnv1a(fnv1a(2, loc as u64), ord as u64),
        Op::Store { loc, val, ord } => fnv1a(fnv1a(fnv1a(3, loc as u64), val), ord as u64),
        Op::Rmw {
            loc, operand, ord, ..
        } => fnv1a(fnv1a(fnv1a(4, loc as u64), operand), ord as u64),
        Op::CellAccess { cell } => fnv1a(5, cell as u64),
        Op::Park => 6,
        Op::Unpark { target } => fnv1a(7, target as u64),
        Op::Join { target } => fnv1a(8, target as u64),
        Op::Lock { mid } => fnv1a(9, mid as u64),
        Op::Unlock { mid } => fnv1a(10, mid as u64),
        Op::Yield => 11,
    }
}

/// Hashes the settled state: thread positions + pending ops + views +
/// memory. Two identical hashes ⇒ (modulo collisions) identical
/// subtrees, so the DFS can prune the second occurrence.
fn state_hash(sh: &Shared) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    for (tid, t) in sh.threads.iter().enumerate() {
        h = fnv1a(h, t.clock.get(tid)); // own position = ops executed
        h = fnv1a(h, u64::from(t.park_token));
        h = match &t.status {
            Status::Finished => fnv1a(h, 0xfee1_dead),
            Status::Ready(op) => fnv1a(h, op_code(op)),
            Status::Running => fnv1a(h, 0x0b5e_55ed),
        };
        for &v in &t.view {
            h = fnv1a(h, v as u64);
        }
        h = fnv1a(h, 0x5eed);
    }
    for loc in &sh.mem.locs {
        for s in &loc.stores {
            h = fnv1a(h, s.value);
            h = fnv1a(h, u64::from(s.release.is_some()));
        }
        h = fnv1a(h, 0x10c);
    }
    for &v in &sh.mem.sc_view {
        h = fnv1a(h, v as u64);
    }
    for m in &sh.mem.mutexes {
        h = fnv1a(h, u64::from(m.locked));
    }
    h
}

/// Executes thread `tid`'s pending op against the model memory.
/// Returns the op result, or a violation (data race). Load-candidate
/// nondeterminism consults the explorer for a branch choice.
fn exec_op(
    sh: &mut Shared,
    tid: usize,
    op: &Op,
    explorer: &mut Explorer,
) -> Result<OpResult, ViolationKind> {
    let mut res = OpResult::default();
    // One clock tick per executed op: the thread's own component is its
    // program position.
    sh.threads[tid].clock.tick(tid);
    match *op {
        Op::Begin | Op::Yield => {}
        Op::Load { loc, ord } => {
            let mut floor = sh.threads[tid].view.get(loc).copied().unwrap_or(0);
            if matches!(ord, Ord::SeqCst) {
                floor = floor.max(sh.mem.sc_view[loc]);
            }
            let latest = sh.mem.locs[loc].stores.len() - 1;
            let fanout = (latest - floor + 1) as u32;
            let idx = if fanout > 1 {
                // Which store this load observes is a real branch in the
                // relaxed-memory tree: newest-first so schedule 0 is the
                // "SC-like" one.
                latest - explorer.choose(fanout) as usize
            } else {
                latest
            };
            let (val, rel) = {
                let rec = &sh.mem.locs[loc].stores[idx];
                (rec.value, rec.release.clone())
            };
            res.value = val;
            let t = &mut sh.threads[tid];
            bump_view(&mut t.view, loc, idx);
            if ord.acquires() {
                if let Some((clk, view)) = rel {
                    t.clock.join(&clk);
                    join_view(&mut t.view, &view);
                }
            }
            if matches!(ord, Ord::SeqCst) && sh.mem.sc_view[loc] < idx {
                sh.mem.sc_view[loc] = idx;
            }
        }
        Op::Store { loc, val, ord } => {
            let idx = sh.mem.locs[loc].stores.len();
            let release = if ord.releases() {
                let t = &mut sh.threads[tid];
                bump_view(&mut t.view, loc, idx);
                Some((t.clock.clone(), t.view.clone()))
            } else {
                bump_view(&mut sh.threads[tid].view, loc, idx);
                None
            };
            sh.mem.locs[loc].stores.push(StoreRec {
                value: val,
                release,
            });
            if matches!(ord, Ord::SeqCst) {
                sh.mem.sc_view[loc] = idx;
            }
        }
        Op::Rmw {
            loc,
            kind,
            operand,
            ord,
        } => {
            // RMWs are atomic: they always read the modification-order
            // maximum — no stale-read branch.
            let latest = sh.mem.locs[loc].stores.len() - 1;
            let (old, rel) = {
                let rec = &sh.mem.locs[loc].stores[latest];
                (rec.value, rec.release.clone())
            };
            res.value = old;
            let writes = match kind {
                RmwKind::CompareExchange { expected } => old == expected,
                _ => true,
            };
            res.ok = writes;
            bump_view(&mut sh.threads[tid].view, loc, latest);
            if ord.acquires() {
                if let Some((clk, view)) = rel.as_ref() {
                    let t = &mut sh.threads[tid];
                    t.clock.join(clk);
                    join_view(&mut t.view, view);
                }
            }
            if writes {
                let newval = match kind {
                    RmwKind::Swap | RmwKind::CompareExchange { .. } => operand,
                    RmwKind::Add => old.wrapping_add(operand),
                    RmwKind::Sub => old.wrapping_sub(operand),
                };
                let idx = latest + 1;
                bump_view(&mut sh.threads[tid].view, loc, idx);
                // Release sequence: the RMW store carries its own release
                // snapshot (if releasing) merged with the snapshot of the
                // store it replaced, so acquirers synchronize with the
                // sequence head through any chain of RMWs.
                let own = if ord.releases() {
                    let t = &sh.threads[tid];
                    Some((t.clock.clone(), t.view.clone()))
                } else {
                    None
                };
                let release = match (own, rel) {
                    (Some((mut c, mut v)), Some((pc, pv))) => {
                        c.join(&pc);
                        join_view(&mut v, &pv);
                        Some((c, v))
                    }
                    (Some(o), None) => Some(o),
                    (None, prev) => prev,
                };
                sh.mem.locs[loc].stores.push(StoreRec {
                    value: newval,
                    release,
                });
                if matches!(ord, Ord::SeqCst) {
                    sh.mem.sc_view[loc] = idx;
                }
            } else if matches!(ord, Ord::SeqCst) && sh.mem.sc_view[loc] < latest {
                sh.mem.sc_view[loc] = latest;
            }
        }
        Op::CellAccess { cell } => {
            let ordered = {
                let c = &sh.mem.cells[cell];
                c.last.le(&sh.threads[tid].clock)
            };
            if !ordered {
                let earlier = sh.mem.cells[cell].last_tid.unwrap_or(usize::MAX);
                return Err(ViolationKind::DataRace {
                    cell,
                    threads: (earlier, tid),
                });
            }
            let snapshot = sh.threads[tid].clock.clone();
            let c = &mut sh.mem.cells[cell];
            c.last = snapshot;
            c.last_tid = Some(tid);
        }
        Op::Park => {
            // Runnable only with a token: consume it and join the hb
            // edge the unparker left behind.
            let (clk, view) = {
                let t = &mut sh.threads[tid];
                t.park_token = false;
                (
                    std::mem::take(&mut t.park_clock),
                    std::mem::take(&mut t.park_view),
                )
            };
            let t = &mut sh.threads[tid];
            t.clock.join(&clk);
            join_view(&mut t.view, &view);
        }
        Op::Unpark { target } => {
            let (clk, view) = {
                let t = &sh.threads[tid];
                (t.clock.clone(), t.view.clone())
            };
            let tgt = &mut sh.threads[target];
            tgt.park_token = true;
            tgt.park_clock.join(&clk);
            join_view(&mut tgt.park_view, &view);
        }
        Op::Join { target } => {
            let (clk, view) = {
                let t = &sh.threads[target];
                (t.clock.clone(), t.view.clone())
            };
            let t = &mut sh.threads[tid];
            t.clock.join(&clk);
            join_view(&mut t.view, &view);
        }
        Op::Lock { mid } => {
            let (clk, view) = {
                let m = &mut sh.mem.mutexes[mid];
                m.locked = true;
                (m.release.clone(), m.view.clone())
            };
            let t = &mut sh.threads[tid];
            t.clock.join(&clk);
            join_view(&mut t.view, &view);
        }
        Op::Unlock { mid } => {
            let (clk, view) = {
                let t = &sh.threads[tid];
                (t.clock.clone(), t.view.clone())
            };
            let m = &mut sh.mem.mutexes[mid];
            m.locked = false;
            m.release.join(&clk);
            join_view(&mut m.view, &view);
        }
    }
    Ok(res)
}

fn settled(t: &ThreadRec) -> bool {
    match t.status {
        Status::Finished => true,
        Status::Ready(_) => !t.granted,
        Status::Running => false,
    }
}

/// Outcome of one execution.
struct ExecOutcome {
    violation: Option<ViolationKind>,
    truncated: bool,
    steps: usize,
    pruned: bool,
}

/// Runs the closure once under one schedule, consulting `explorer` at
/// every choice point.
fn run_once(
    body: &Arc<dyn Fn() + Send + Sync>,
    opts: &ModelOptions,
    explorer: &mut Explorer,
) -> ExecOutcome {
    install_quiet_hook();
    let ctx = Arc::new(Ctx {
        shared: Mutex::new(Shared {
            threads: Vec::new(),
            mem: ModelState::default(),
            aborting: false,
            handles: Vec::new(),
        }),
        cv: Condvar::new(),
        epoch: EPOCH.fetch_add(1, Ordering::Relaxed),
    });
    let root = ctx.register_root();
    debug_assert_eq!(root, 0);
    {
        let ctx0 = Arc::clone(&ctx);
        let body = Arc::clone(body);
        let h = std::thread::spawn(move || thread_main(ctx0, 0, move || body()));
        ctx.adopt_handle(h);
    }

    let mut outcome = ExecOutcome {
        violation: None,
        truncated: false,
        steps: 0,
        pruned: false,
    };
    loop {
        let mut sh = ctx.shared.lock().expect("model state poisoned");
        while !sh.threads.iter().all(settled) {
            sh = ctx.cv.wait(sh).expect("model state poisoned");
        }
        // A caught model panic beats everything else.
        if let Some((tid, msg)) = sh
            .threads
            .iter()
            .enumerate()
            .find_map(|(i, t)| t.panic_msg.clone().map(|m| (i, m)))
        {
            outcome.violation = Some(ViolationKind::Panic {
                thread: tid,
                message: msg,
            });
            break;
        }
        if sh
            .threads
            .iter()
            .all(|t| matches!(t.status, Status::Finished))
        {
            break; // clean completion
        }
        let runnable: Vec<usize> = sh
            .threads
            .iter()
            .enumerate()
            .filter_map(|(tid, t)| match &t.status {
                Status::Ready(op) if op_runnable(&sh, tid, op) => Some(tid),
                _ => None,
            })
            .collect();
        if runnable.is_empty() {
            outcome.violation = Some(ViolationKind::Deadlock);
            break;
        }
        if outcome.steps >= opts.max_steps {
            outcome.truncated = true;
            break;
        }
        if opts.prune && explorer.on_fresh_frontier() {
            let h = state_hash(&sh);
            if !explorer.seen.insert(h) {
                outcome.pruned = true;
                break;
            }
        }
        let tid = if runnable.len() > 1 {
            runnable[explorer.choose(runnable.len() as u32) as usize]
        } else {
            runnable[0]
        };
        let op = match &sh.threads[tid].status {
            Status::Ready(op) => op.clone(),
            _ => unreachable!("chosen thread is not ready"),
        };
        match exec_op(&mut sh, tid, &op, explorer) {
            Ok(res) => {
                let t = &mut sh.threads[tid];
                t.result = res;
                t.granted = true;
            }
            Err(v) => {
                outcome.violation = Some(v);
                break;
            }
        }
        outcome.steps += 1;
        ctx.cv.notify_all();
    }

    // Abandon the execution: every live thread unwinds with AbortToken
    // (drop handlers fall back to mirror semantics while panicking).
    let handles = {
        let mut sh = ctx.shared.lock().expect("model state poisoned");
        sh.aborting = true;
        loop {
            for t in sh.threads.iter_mut() {
                if matches!(t.status, Status::Ready(_)) && !t.granted {
                    t.result = OpResult {
                        aborted: true,
                        ..OpResult::default()
                    };
                    t.granted = true;
                }
            }
            ctx.cv.notify_all();
            if sh
                .threads
                .iter()
                .all(|t| matches!(t.status, Status::Finished))
            {
                break;
            }
            sh = ctx.cv.wait(sh).expect("model state poisoned");
        }
        std::mem::take(&mut sh.handles)
    };
    for h in handles {
        let _ = h.join();
    }
    outcome
}

/// Explores the closure under `opts`; returns the full [`Report`].
///
/// The closure runs many times (once per schedule); it must be
/// self-contained and deterministic apart from the shim types.
pub fn explore<F>(opts: ModelOptions, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let mut explorer = Explorer::new(opts.strategy.clone());
    let mut report = Report {
        executions: 0,
        exhausted: false,
        pruned: 0,
        truncated: 0,
        deepest: 0,
        schedule_hash: 0xcbf2_9ce4_8422_2325,
        violation: None,
    };
    loop {
        let outcome = run_once(&body, &opts, &mut explorer);
        report.executions += 1;
        report.deepest = report.deepest.max(outcome.steps);
        if outcome.pruned {
            report.pruned += 1;
        }
        if outcome.truncated {
            report.truncated += 1;
        }
        for &(taken, _) in &explorer.stack {
            report.schedule_hash = fnv1a(report.schedule_hash, u64::from(taken));
        }
        report.schedule_hash = fnv1a(report.schedule_hash, 0x5c4e_d01e);
        if let Some(kind) = outcome.violation {
            report.violation = Some(Violation {
                kind,
                choices: explorer.stack.iter().map(|&(t, _)| t).collect(),
            });
            break;
        }
        if matches!(explorer.strategy, Strategy::Replay(_)) {
            report.exhausted = true;
            break;
        }
        if report.executions >= opts.max_executions {
            break;
        }
        if !explorer.backtrack() {
            report.exhausted = true;
            break;
        }
    }
    report
}

/// Explores with default options and **panics on any violation** — the
/// assert-style entry model tests use.
///
/// # Panics
///
/// Panics with the violation display (including the replay choice list)
/// when the explorer finds one.
pub fn model<F>(body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let report = explore(ModelOptions::default(), body);
    if let Some(v) = &report.violation {
        panic!(
            "model violation after {} executions: {v}",
            report.executions
        );
    }
    report
}
