//! Property-based tests: the NoC broadcast is functionally identical to a
//! direct table lookup for every geometry and input batch.
//!
//! Checked over deterministic pseudo-random stimulus from the workspace
//! PRNG (`nova_fixed::rng`) instead of proptest, per the no-external-
//! dependency policy.

use nova_approx::{fit, Activation, QuantizedPwl};
use nova_fixed::rng::StdRng;
use nova_fixed::{Fixed, Rounding, Q4_12};
use nova_noc::{sim::BroadcastSim, Flit, LineConfig, LinkConfig};

fn table(segments: usize) -> QuantizedPwl {
    let pwl =
        fit::fit_activation(Activation::Gelu, segments, fit::BreakpointStrategy::Uniform).unwrap();
    QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
}

fn raw16(rng: &mut StdRng) -> i64 {
    rng.gen_range(i64::from(i16::MIN)..i64::from(i16::MAX) + 1)
}

/// NoC simulation ≡ table lookup, bit for bit, for any geometry.
#[test]
fn broadcast_equals_table() {
    let mut rng = StdRng::seed_from_u64(0xB001);
    for _ in 0..64 {
        let segments = rng.gen_range(1usize..17);
        let routers = rng.gen_range(1usize..13);
        let neurons = rng.gen_range(1usize..9);
        let reach = rng.gen_range(1usize..11);
        let n_raws = rng.gen_range(1usize..96);
        let raws: Vec<i64> = (0..n_raws).map(|_| raw16(&mut rng)).collect();
        let t = table(segments);
        let mut config = LineConfig::paper_default(routers, neurons);
        config.max_hops_per_cycle = reach;
        let mut sim = BroadcastSim::new(config, &t).unwrap();
        let inputs: Vec<Vec<Fixed>> = (0..routers)
            .map(|r| {
                (0..neurons)
                    .map(|n| {
                        let raw = raws[(r * neurons + n) % raws.len()];
                        Fixed::from_raw(raw, Q4_12).unwrap()
                    })
                    .collect()
            })
            .collect();
        let out = sim.run(&inputs).unwrap();
        for (out_row, in_row) in out.outputs.iter().zip(&inputs) {
            for (&o, &x) in out_row.iter().zip(in_row) {
                assert_eq!(o, t.eval(x));
            }
        }
    }
}

/// NoC cycle count follows the pipeline formula:
/// flits + traversal_cycles − 1 (one flit injected per cycle, each
/// taking `traversal_cycles` to cross the line).
#[test]
fn cycle_count_formula() {
    let mut rng = StdRng::seed_from_u64(0xB002);
    for _ in 0..64 {
        let segments = rng.gen_range(1usize..17);
        let routers = rng.gen_range(1usize..25);
        let reach = rng.gen_range(1usize..11);
        let t = table(segments);
        let mut config = LineConfig::paper_default(routers, 1);
        config.max_hops_per_cycle = reach;
        let flits = t.segments().div_ceil(config.link.pairs_per_flit);
        if flits > config.link.tag_capacity() {
            continue;
        }
        let mut sim = BroadcastSim::new(config, &t).unwrap();
        let inputs = vec![vec![Fixed::zero(Q4_12)]; routers];
        let out = sim.run(&inputs).unwrap();
        let traversal = routers.div_ceil(reach) as u64;
        assert_eq!(out.stats.noc_cycles, flits as u64 + traversal - 1);
    }
}

/// Hop count: every flit visits every router exactly once.
#[test]
fn hops_are_flits_times_routers() {
    let mut rng = StdRng::seed_from_u64(0xB003);
    for _ in 0..64 {
        let segments = rng.gen_range(1usize..17);
        let routers = rng.gen_range(1usize..13);
        let t = table(segments);
        let config = LineConfig::paper_default(routers, 1);
        let mut sim = BroadcastSim::new(config, &t).unwrap();
        let inputs = vec![vec![Fixed::zero(Q4_12)]; routers];
        let out = sim.run(&inputs).unwrap();
        let flits = sim.schedule().flit_count() as u64;
        assert_eq!(out.stats.hops, flits * routers as u64);
    }
}

/// Flit wire-image roundtrip for arbitrary word payloads.
#[test]
fn flit_pack_unpack() {
    let mut rng = StdRng::seed_from_u64(0xB004);
    for _ in 0..64 {
        let words: Vec<i64> = (0..16).map(|_| raw16(&mut rng)).collect();
        let tag = rng.gen_range(0u32..2) as u8;
        let pairs: Vec<nova_approx::SlopeBias> = words
            .chunks(2)
            .map(|c| nova_approx::SlopeBias {
                slope: Fixed::from_raw(c[0], Q4_12).unwrap(),
                bias: Fixed::from_raw(c[1], Q4_12).unwrap(),
            })
            .collect();
        let c = LinkConfig::paper();
        let f = Flit::from_pairs(&pairs, tag, c).unwrap();
        assert_eq!(Flit::unpack(&f.pack(), c).unwrap(), f);
    }
}
