//! Property-based tests: the NoC broadcast is functionally identical to a
//! direct table lookup for every geometry and input batch.

use nova_approx::{fit, Activation, QuantizedPwl};
use nova_fixed::{Fixed, Q4_12, Rounding};
use nova_noc::{sim::BroadcastSim, Flit, LineConfig, LinkConfig};
use proptest::prelude::*;

fn table(segments: usize) -> QuantizedPwl {
    let pwl = fit::fit_activation(Activation::Gelu, segments, fit::BreakpointStrategy::Uniform)
        .unwrap();
    QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// NoC simulation ≡ table lookup, bit for bit, for any geometry.
    #[test]
    fn broadcast_equals_table(
        segments in 1usize..=16,
        routers in 1usize..=12,
        neurons in 1usize..=8,
        reach in 1usize..=10,
        raws in prop::collection::vec(i64::from(i16::MIN)..=i64::from(i16::MAX), 1..96),
    ) {
        let t = table(segments);
        let mut config = LineConfig::paper_default(routers, neurons);
        config.max_hops_per_cycle = reach;
        let mut sim = BroadcastSim::new(config, &t).unwrap();
        let inputs: Vec<Vec<Fixed>> = (0..routers)
            .map(|r| {
                (0..neurons)
                    .map(|n| {
                        let raw = raws[(r * neurons + n) % raws.len()];
                        Fixed::from_raw(raw, Q4_12).unwrap()
                    })
                    .collect()
            })
            .collect();
        let out = sim.run(&inputs).unwrap();
        for (out_row, in_row) in out.outputs.iter().zip(&inputs) {
            for (&o, &x) in out_row.iter().zip(in_row) {
                prop_assert_eq!(o, t.eval(x));
            }
        }
    }

    /// NoC cycle count follows the pipeline formula:
    /// flits + traversal_cycles − 1 (one flit injected per cycle, each
    /// taking `traversal_cycles` to cross the line).
    #[test]
    fn cycle_count_formula(
        segments in 1usize..=16,
        routers in 1usize..=24,
        reach in 1usize..=10,
    ) {
        let t = table(segments);
        let mut config = LineConfig::paper_default(routers, 1);
        config.max_hops_per_cycle = reach;
        let flits = t.segments().div_ceil(config.link.pairs_per_flit);
        prop_assume!(flits <= config.link.tag_capacity());
        let mut sim = BroadcastSim::new(config, &t).unwrap();
        let inputs = vec![vec![Fixed::zero(Q4_12)]; routers];
        let out = sim.run(&inputs).unwrap();
        let traversal = routers.div_ceil(reach) as u64;
        prop_assert_eq!(out.stats.noc_cycles, flits as u64 + traversal - 1);
    }

    /// Hop count: every flit visits every router exactly once.
    #[test]
    fn hops_are_flits_times_routers(
        segments in 1usize..=16,
        routers in 1usize..=12,
    ) {
        let t = table(segments);
        let config = LineConfig::paper_default(routers, 1);
        let mut sim = BroadcastSim::new(config, &t).unwrap();
        let inputs = vec![vec![Fixed::zero(Q4_12)]; routers];
        let out = sim.run(&inputs).unwrap();
        let flits = sim.schedule().flit_count() as u64;
        prop_assert_eq!(out.stats.hops, flits * routers as u64);
    }

    /// Flit wire-image roundtrip for arbitrary word payloads.
    #[test]
    fn flit_pack_unpack(words in prop::collection::vec(any::<i16>(), 16), tag in 0u8..=1) {
        let pairs: Vec<nova_approx::SlopeBias> = words
            .chunks(2)
            .map(|c| nova_approx::SlopeBias {
                slope: Fixed::from_raw(i64::from(c[0]), Q4_12).unwrap(),
                bias: Fixed::from_raw(i64::from(c[1]), Q4_12).unwrap(),
            })
            .collect();
        let c = LinkConfig::paper();
        let f = Flit::from_pairs(&pairs, tag, c).unwrap();
        prop_assert_eq!(Flit::unpack(&f.pack(), c).unwrap(), f);
    }
}
