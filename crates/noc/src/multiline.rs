//! Segmented broadcast: parallel NOVA lines for hosts whose router count
//! exceeds the single-cycle SMART reach.
//!
//! The paper's scalability analysis (§V.A) stops at "beyond 10 routers the
//! traversal takes multiple cycles". This module implements the natural
//! fix the analysis implies: split the line into `k` segments, each with
//! its own injection point fed by the same mapper, broadcasting in
//! parallel. Latency returns to single-cycle at the cost of replicating
//! the injector (not the table — the pairs are still on wires).
//!
//! This matters in practice: a TPU-like host at a 2.8 GHz NoC clock has a
//! reach of ~5 routers, so its 8 MXUs need either 2 NoC cycles (plain
//! line) or 2 segments (this module).

use nova_approx::QuantizedPwl;
use nova_fixed::Fixed;

use crate::sim::{BroadcastSim, Outcome, SimStats};
use crate::{LineConfig, NocError};

/// A NOVA NoC split into parallel segments.
#[derive(Debug, Clone)]
pub struct SegmentedNoc {
    segments: Vec<BroadcastSim>,
    /// Routers per segment (last may be smaller).
    split: Vec<usize>,
    config: LineConfig,
}

impl SegmentedNoc {
    /// Splits `config.routers` into the fewest segments that each fit the
    /// single-cycle reach, and builds one simulator per segment.
    ///
    /// # Errors
    ///
    /// Propagates configuration/schedule errors.
    pub fn new(config: LineConfig, table: &QuantizedPwl) -> Result<Self, NocError> {
        config.validate()?;
        let reach = config.max_hops_per_cycle;
        let k = config.routers.div_ceil(reach);
        let mut split = Vec::with_capacity(k);
        let mut remaining = config.routers;
        while remaining > 0 {
            let take = remaining.min(reach);
            split.push(take);
            remaining -= take;
        }
        let segments = split
            .iter()
            .map(|&routers| {
                let seg_config = LineConfig { routers, ..config };
                BroadcastSim::new(seg_config, table)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            segments,
            split,
            config,
        })
    }

    /// Number of parallel segments.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The full-line configuration (before segmentation).
    #[must_use]
    pub fn config(&self) -> LineConfig {
        self.config
    }

    /// Routers per segment.
    #[must_use]
    pub fn split(&self) -> &[usize] {
        &self.split
    }

    /// The quantized table the segments are programmed with.
    ///
    /// # Panics
    ///
    /// Never — construction guarantees at least one segment.
    #[must_use]
    pub fn table(&self) -> &QuantizedPwl {
        self.segments[0].table()
    }

    /// Per-batch broadcast latency in core cycles without running a
    /// batch: segments broadcast concurrently, so the nominal latency is
    /// the maximum over the per-segment nominal latencies (the widest
    /// segment dominates).
    #[must_use]
    pub fn nominal_core_cycle_latency(&self) -> u64 {
        self.segments
            .iter()
            .map(BroadcastSim::nominal_core_cycle_latency)
            .max()
            .unwrap_or(0)
    }

    /// Runs one batch across all segments in parallel. NoC cycles are the
    /// *maximum* over segments (they operate concurrently); activity
    /// counters are summed.
    ///
    /// Compatibility wrapper over [`run_flat`](Self::run_flat) — hot
    /// loops should hold flat buffers and call `run_flat` directly.
    ///
    /// # Errors
    ///
    /// Same shape/format validation as [`BroadcastSim::run`].
    pub fn run(&mut self, inputs: &[Vec<Fixed>]) -> Result<Outcome, NocError> {
        let config = self.config;
        crate::sim::run_nested_via_flat(config, inputs, |flat, out| self.run_flat(flat, out))
    }

    /// Runs one batch over flat row-major buffers (slot
    /// `r * neurons + n`), each segment broadcasting over its contiguous
    /// row range in place — the zero-copy hot path, with no per-batch
    /// allocation.
    ///
    /// # Errors
    ///
    /// Same shape/format validation as [`BroadcastSim::run_flat`].
    pub fn run_flat(
        &mut self,
        inputs: &[Fixed],
        outputs: &mut [Fixed],
    ) -> Result<SimStats, NocError> {
        self.run_flat_with(inputs, outputs, BroadcastSim::run_flat)
    }

    /// [`run_flat`](Self::run_flat) through every segment's cycle-accurate
    /// flit-level reference ([`BroadcastSim::run_flat_reference`]) instead
    /// of the analytic SoA fast path — the executable specification the
    /// fast path is tested against, and the baseline its speedup is
    /// benched against.
    ///
    /// # Errors
    ///
    /// Same shape/format validation as [`BroadcastSim::run_flat`].
    pub fn run_flat_reference(
        &mut self,
        inputs: &[Fixed],
        outputs: &mut [Fixed],
    ) -> Result<SimStats, NocError> {
        self.run_flat_with(inputs, outputs, BroadcastSim::run_flat_reference)
    }

    fn run_flat_with(
        &mut self,
        inputs: &[Fixed],
        outputs: &mut [Fixed],
        mut run: impl FnMut(&mut BroadcastSim, &[Fixed], &mut [Fixed]) -> Result<SimStats, NocError>,
    ) -> Result<SimStats, NocError> {
        let neurons = self.config.neurons_per_router;
        let slots = self.config.routers * neurons;
        if inputs.len() != slots || outputs.len() != slots {
            return Err(NocError::InputShape {
                routers: self.config.routers,
                neurons,
                got: (inputs.len(), outputs.len()),
            });
        }
        let mut stats = SimStats::default();
        let mut offset = 0;
        for (seg, &routers) in self.segments.iter_mut().zip(&self.split) {
            let end = offset + routers * neurons;
            let s = run(seg, &inputs[offset..end], &mut outputs[offset..end])?;
            stats.noc_cycles = stats.noc_cycles.max(s.noc_cycles);
            stats.core_cycle_latency = stats.core_cycle_latency.max(s.core_cycle_latency);
            stats.flits_injected += s.flits_injected;
            stats.hops += s.hops;
            stats.buffered += s.buffered;
            stats.pairs_latched += s.pairs_latched;
            stats.mac_ops += s.mac_ops;
            offset = end;
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_approx::{fit, Activation};
    use nova_fixed::{Rounding, Q4_12};

    fn table() -> QuantizedPwl {
        let pwl =
            fit::fit_activation(Activation::Exp, 16, fit::BreakpointStrategy::Uniform).unwrap();
        QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
    }

    fn batch(routers: usize, neurons: usize) -> Vec<Vec<Fixed>> {
        (0..routers)
            .map(|r| {
                (0..neurons)
                    .map(|n| {
                        Fixed::from_f64(
                            -(((r * neurons + n) as f64 * 0.7).sin().abs() * 7.9),
                            Q4_12,
                            Rounding::NearestEven,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn tpu_v4_at_reach_5_needs_two_segments() {
        let t = table();
        let mut config = LineConfig::paper_default(8, 4);
        config.max_hops_per_cycle = 5; // 2.8 GHz NoC reach
        let mut noc = SegmentedNoc::new(config, &t).unwrap();
        assert_eq!(noc.segment_count(), 2);
        assert_eq!(noc.split(), &[5, 3]);
        let inputs = batch(8, 4);
        let out = noc.run(&inputs).unwrap();
        // Single-cycle broadcast restored: 2 flits, 2 NoC cycles, latency
        // 2 core cycles — same as a short line.
        assert_eq!(out.stats.noc_cycles, 2);
        assert_eq!(out.stats.core_cycle_latency, 2);
        assert_eq!(out.stats.buffered, 0);
    }

    #[test]
    fn segmented_matches_plain_line_results() {
        let t = table();
        let mut config = LineConfig::paper_default(12, 3);
        config.max_hops_per_cycle = 4;
        let inputs = batch(12, 3);
        let mut seg = SegmentedNoc::new(config, &t).unwrap();
        let mut plain = BroadcastSim::new(config, &t).unwrap();
        let a = seg.run(&inputs).unwrap();
        let b = plain.run(&inputs).unwrap();
        assert_eq!(a.outputs, b.outputs, "functionally identical");
        // But the segmented NoC is strictly faster.
        assert!(a.stats.noc_cycles < b.stats.noc_cycles);
    }

    #[test]
    fn single_segment_when_reach_suffices() {
        let t = table();
        let config = LineConfig::paper_default(8, 2); // reach 10 ≥ 8
        let noc = SegmentedNoc::new(config, &t).unwrap();
        assert_eq!(noc.segment_count(), 1);
    }

    #[test]
    fn flit_injections_scale_with_segments() {
        let t = table();
        let mut config = LineConfig::paper_default(20, 1);
        config.max_hops_per_cycle = 5;
        let mut noc = SegmentedNoc::new(config, &t).unwrap();
        assert_eq!(noc.segment_count(), 4);
        let out = noc.run(&batch(20, 1)).unwrap();
        // 2 flits per segment (16 breakpoints), 4 segments.
        assert_eq!(out.stats.flits_injected, 8);
    }

    #[test]
    fn nominal_latency_matches_simulation() {
        let t = table();
        for (routers, reach) in [(8, 5), (12, 4), (20, 5), (8, 10)] {
            let mut config = LineConfig::paper_default(routers, 2);
            config.max_hops_per_cycle = reach;
            let mut noc = SegmentedNoc::new(config, &t).unwrap();
            let nominal = noc.nominal_core_cycle_latency();
            let out = noc.run(&batch(routers, 2)).unwrap();
            assert_eq!(
                nominal, out.stats.core_cycle_latency,
                "{routers} routers at reach {reach}"
            );
        }
    }

    #[test]
    fn segmented_fast_path_matches_reference() {
        // The segmented NoC inherits the analytic fast path per segment;
        // it must agree with the flit-level reference on outputs and
        // merged stats, including the uneven-final-segment split.
        let t = table();
        for (routers, neurons, reach) in [(8, 4, 5), (12, 3, 4), (20, 1, 5)] {
            let mut config = LineConfig::paper_default(routers, neurons);
            config.max_hops_per_cycle = reach;
            let mut fast = SegmentedNoc::new(config, &t).unwrap();
            let mut reference = SegmentedNoc::new(config, &t).unwrap();
            let inputs: Vec<Fixed> = batch(routers, neurons).into_iter().flatten().collect();
            let mut out_fast = vec![Fixed::zero(Q4_12); inputs.len()];
            let mut out_ref = out_fast.clone();
            for _ in 0..2 {
                let sf = fast.run_flat(&inputs, &mut out_fast).unwrap();
                let sr = reference.run_flat_reference(&inputs, &mut out_ref).unwrap();
                assert_eq!(out_fast, out_ref, "{routers}r/{neurons}n reach {reach}");
                assert_eq!(sf, sr, "{routers}r/{neurons}n reach {reach}");
            }
        }
    }

    #[test]
    fn shape_validation() {
        let t = table();
        let mut noc = SegmentedNoc::new(LineConfig::paper_default(4, 2), &t).unwrap();
        assert!(noc.run(&batch(3, 2)).is_err());
    }
}
