use crate::{LinkConfig, NocError};

/// Geometry and timing of a NOVA line NoC instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineConfig {
    /// Routers on the line (one per PE cluster / core; paper Table II).
    pub routers: usize,
    /// Output neurons served by each router.
    pub neurons_per_router: usize,
    /// Link geometry (width, tag bits).
    pub link: LinkConfig,
    /// Maximum routers a flit traverses per NoC cycle (SMART reach; the
    /// paper's P&R gives 10 at 1.5 GHz with 1 mm pitch).
    pub max_hops_per_cycle: usize,
}

impl LineConfig {
    /// The paper's default geometry: 257-bit link, single-cycle reach of
    /// 10 routers.
    #[must_use]
    pub fn paper_default(routers: usize, neurons_per_router: usize) -> Self {
        Self {
            routers,
            neurons_per_router,
            link: LinkConfig::paper(),
            max_hops_per_cycle: 10,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::BadLineConfig`] for zero routers, neurons or
    /// hop reach.
    pub fn validate(&self) -> Result<(), NocError> {
        if self.routers == 0 {
            return Err(NocError::BadLineConfig("need at least one router"));
        }
        if self.neurons_per_router == 0 {
            return Err(NocError::BadLineConfig(
                "need at least one neuron per router",
            ));
        }
        if self.max_hops_per_cycle == 0 {
            return Err(NocError::BadLineConfig("hop reach must be > 0"));
        }
        Ok(())
    }

    /// Total neurons across the line.
    #[must_use]
    pub fn total_neurons(&self) -> usize {
        self.routers * self.neurons_per_router
    }

    /// NoC cycles for one flit to reach the last router.
    #[must_use]
    pub fn traversal_cycles(&self) -> usize {
        self.routers.div_ceil(self.max_hops_per_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        let c = LineConfig::paper_default(10, 256);
        assert!(c.validate().is_ok());
        assert_eq!(c.total_neurons(), 2560);
        assert_eq!(c.traversal_cycles(), 1);
    }

    #[test]
    fn beyond_reach_needs_more_cycles() {
        let mut c = LineConfig::paper_default(25, 16);
        assert_eq!(c.traversal_cycles(), 3);
        c.max_hops_per_cycle = 5;
        assert_eq!(c.traversal_cycles(), 5);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(LineConfig::paper_default(0, 1).validate().is_err());
        assert!(LineConfig::paper_default(1, 0).validate().is_err());
        let mut c = LineConfig::paper_default(1, 1);
        c.max_hops_per_cycle = 0;
        assert!(c.validate().is_err());
    }
}
