//! Fault injection on the broadcast link, and the hooks the serving
//! runtime uses to rehearse shard failure.
//!
//! NOVA trades SRAM (with its well-understood ECC story) for long repeated
//! wires, so a reproduction should let users ask: *what does a single-event
//! upset on the link do to the results?* Two layers answer that:
//!
//! - **Offline analysis** — [`inject`] flips a chosen bit of a flit's wire
//!   image and reports how the approximation output degrades. Useful both
//!   as a robustness study and as a test oracle (a flipped bit must
//!   corrupt only the neurons whose lookup address selected the affected
//!   pair, and only in the affected flit).
//! - **Online rehearsal** — [`FaultInjector`] is a deterministic one-shot
//!   trigger a serving-engine shard carries. After a configured number of
//!   lookup evaluations it either flips a bit of one output word
//!   ([`InjectedFault::BitFlip`]) or panics ([`InjectedFault::Panic`]),
//!   standing in for a real single-event upset or a wedged worker. The
//!   serving engine's fault-check canary (see `nova-core`'s serving
//!   module) is expected to catch the corruption, quarantine the shard,
//!   and requeue its in-flight work — the injector exists so chaos tests,
//!   benches, and examples can drive that lifecycle on demand and fully
//!   reproducibly.

use nova_approx::QuantizedPwl;
use nova_fixed::Fixed;

use crate::comparator::Comparators;
use crate::{BroadcastSchedule, Flit, LinkConfig, NocError};

/// A single-bit fault on the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitFault {
    /// Which flit of the schedule is hit (0-based).
    pub flit: usize,
    /// Which wire (bit position in the packed 257-bit image).
    pub bit: usize,
}

impl BitFault {
    /// The pair slot this fault lands in, or `None` if it hit the tag
    /// field.
    #[must_use]
    pub fn slot(&self, link: LinkConfig) -> Option<usize> {
        let data_bits = link.pairs_per_flit * 32;
        (self.bit < data_bits).then_some(self.bit / 32)
    }
}

/// The observable effect of a [`FaultInjector`] firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectedFault {
    /// XOR one bit into an output word, modelling a link upset that slipped
    /// past the wire-level checkers.
    BitFlip {
        /// Bit position to flip; consumers reduce it modulo the format
        /// width of the word they corrupt.
        bit: u32,
    },
    /// Panic at the trigger point, modelling a wedged or crashed worker.
    Panic,
}

/// A deterministic one-shot fault trigger for serving-engine shards.
///
/// The carrier calls [`tick`](Self::tick) once per lookup evaluation; the
/// injector stays silent for `after` ticks, fires exactly once, and is
/// inert afterwards. Because the trigger counts deterministic events (not
/// wall-clock time), a seeded chaos sweep replays the identical failure
/// on every run.
///
/// ```
/// use nova_noc::fault::{FaultInjector, InjectedFault};
///
/// let mut inj = FaultInjector::bit_flip(2, 7);
/// assert_eq!(inj.tick(), None);
/// assert_eq!(inj.tick(), None);
/// assert_eq!(inj.tick(), Some(InjectedFault::BitFlip { bit: 7 }));
/// assert_eq!(inj.tick(), None); // one-shot: never fires again
/// assert!(inj.fired());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FaultInjector {
    after: u64,
    mode: InjectedFault,
    ticks: u64,
    fired: bool,
}

impl FaultInjector {
    /// An injector that flips `bit` of one output word on the
    /// `after`-th [`tick`](Self::tick) (0-based: `after == 0` fires on the
    /// first tick).
    #[must_use]
    pub fn bit_flip(after: u64, bit: u32) -> Self {
        Self {
            after,
            mode: InjectedFault::BitFlip { bit },
            ticks: 0,
            fired: false,
        }
    }

    /// An injector that panics on the `after`-th [`tick`](Self::tick).
    #[must_use]
    pub fn panic_after(after: u64) -> Self {
        Self {
            after,
            mode: InjectedFault::Panic,
            ticks: 0,
            fired: false,
        }
    }

    /// Advances the trigger clock; returns the fault exactly once, on the
    /// `after`-th call.
    ///
    /// Note the [`InjectedFault::Panic`] mode does **not** panic here —
    /// the carrier decides where the returned verdict detonates, so the
    /// panic lands inside whatever unwind boundary guards the datapath.
    pub fn tick(&mut self) -> Option<InjectedFault> {
        if self.fired {
            return None;
        }
        let due = self.ticks == self.after;
        self.ticks += 1;
        if due {
            self.fired = true;
            Some(self.mode)
        } else {
            None
        }
    }

    /// Whether the one-shot has already fired.
    #[must_use]
    pub fn fired(&self) -> bool {
        self.fired
    }
}

/// Outcome of evaluating one input batch under a fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Per-input golden (fault-free) results.
    pub golden: Vec<Fixed>,
    /// Per-input faulty results.
    pub faulty: Vec<Fixed>,
    /// Indices of inputs whose result changed.
    pub corrupted: Vec<usize>,
    /// Whether the fault hit the tag field (corrupts pair *selection*, not
    /// values).
    pub tag_fault: bool,
}

/// Applies `fault` to the compiled schedule of `table` and evaluates
/// `inputs` through the (faulty) broadcast datapath.
///
/// # Errors
///
/// Propagates schedule compilation errors; returns
/// [`NocError::BadLinkConfig`] for an out-of-range fault position.
pub fn inject(
    table: &QuantizedPwl,
    link: LinkConfig,
    inputs: &[Fixed],
    fault: BitFault,
) -> Result<FaultReport, NocError> {
    let schedule = BroadcastSchedule::compile(table, link)?;
    if fault.flit >= schedule.flit_count() || fault.bit >= link.link_bits() {
        return Err(NocError::BadLinkConfig("fault position out of range"));
    }

    // Corrupt the wire image of the targeted flit.
    let mut flits: Vec<Flit> = schedule.flits().to_vec();
    let mut bytes = flits[fault.flit].pack();
    bytes[fault.bit / 8] ^= 1 << (fault.bit % 8);
    flits[fault.flit] = Flit::unpack(&bytes, link)?;
    let tag_fault = fault.bit >= link.pairs_per_flit * 32;

    // Evaluate every input through comparator → (faulty) pair → MAC.
    let comparators = Comparators::from_table(table);
    let flit_count = schedule.flit_count();
    let mut golden = Vec::with_capacity(inputs.len());
    let mut faulty = Vec::with_capacity(inputs.len());
    let mut corrupted = Vec::new();
    for (i, &x) in inputs.iter().enumerate() {
        let xc = comparators.clamp(x);
        let addr = comparators.address(xc);
        let tag = addr.tag(flit_count);
        let slot = addr.slot(flit_count);
        let gold_pair = schedule.flits()[usize::from(tag)].pair(slot, table.format());
        // The faulty network: the router matches tags against the (possibly
        // corrupted) tag field; a tag fault makes one flit answer for the
        // wrong addresses.
        let faulty_flit = flits
            .iter()
            .find(|f| f.tag() == tag)
            .unwrap_or(&flits[usize::from(tag) % flits.len()]);
        let bad_pair = faulty_flit.pair(slot, table.format());
        let g = gold_pair
            .slope
            .mul_add(xc, gold_pair.bias, table.rounding())
            .expect("table format");
        let f = bad_pair
            .slope
            .mul_add(xc, bad_pair.bias, table.rounding())
            .expect("table format");
        if g != f {
            corrupted.push(i);
        }
        golden.push(g);
        faulty.push(f);
    }
    Ok(FaultReport {
        golden,
        faulty,
        corrupted,
        tag_fault,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_approx::{fit, Activation};
    use nova_fixed::{Rounding, Q4_12};

    fn table() -> QuantizedPwl {
        let pwl =
            fit::fit_activation(Activation::Sigmoid, 16, fit::BreakpointStrategy::Uniform).unwrap();
        QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
    }

    fn inputs() -> Vec<Fixed> {
        (0..64)
            .map(|i| Fixed::from_f64(-7.5 + i as f64 * 0.23, Q4_12, Rounding::NearestEven))
            .collect()
    }

    #[test]
    fn fault_corrupts_only_the_addressed_slot() {
        let t = table();
        let link = LinkConfig::paper();
        let xs = inputs();
        // Flip a bit in slot 3 of flit 0 → only addresses with tag 0, slot
        // 3 (i.e. address 6) may change.
        let fault = BitFault {
            flit: 0,
            bit: 3 * 32 + 5,
        };
        assert_eq!(fault.slot(link), Some(3));
        let report = inject(&t, link, &xs, fault).unwrap();
        assert!(!report.tag_fault);
        for &i in &report.corrupted {
            let addr = t.lookup_address(xs[i]);
            assert_eq!(
                addr, 6,
                "input {i} with address {addr} must not be affected"
            );
        }
    }

    #[test]
    fn some_fault_always_detectable_with_coverage() {
        // A high-order slope bit flip must corrupt at least one input of a
        // batch that covers all 16 segments.
        let t = table();
        let link = LinkConfig::paper();
        let xs = inputs(); // spans the domain → all addresses covered
        let fault = BitFault { flit: 1, bit: 14 }; // slot 0 slope, high bit
        let report = inject(&t, link, &xs, fault).unwrap();
        assert!(!report.corrupted.is_empty(), "an MSB flip must be visible");
    }

    #[test]
    fn tag_fault_detected_as_selection_corruption() {
        let t = table();
        let link = LinkConfig::paper();
        let fault = BitFault { flit: 0, bit: 256 }; // the tag bit
        let report = inject(&t, link, &inputs(), fault).unwrap();
        assert!(report.tag_fault);
    }

    #[test]
    fn out_of_range_fault_rejected() {
        let t = table();
        let link = LinkConfig::paper();
        assert!(inject(&t, link, &inputs(), BitFault { flit: 5, bit: 0 }).is_err());
        assert!(inject(&t, link, &inputs(), BitFault { flit: 0, bit: 257 }).is_err());
    }

    #[test]
    fn slot_classifies_every_bit_position() {
        let link = LinkConfig::paper();
        let data_bits = link.pairs_per_flit * 32;
        // First and last data bit of the first and last pair slots.
        assert_eq!(BitFault { flit: 0, bit: 0 }.slot(link), Some(0));
        assert_eq!(BitFault { flit: 0, bit: 31 }.slot(link), Some(0));
        assert_eq!(
            BitFault {
                flit: 0,
                bit: data_bits - 1
            }
            .slot(link),
            Some(link.pairs_per_flit - 1)
        );
        // The tag field and anything beyond the wire image are not a slot.
        assert_eq!(
            BitFault {
                flit: 0,
                bit: data_bits
            }
            .slot(link),
            None
        );
        assert_eq!(
            BitFault {
                flit: 0,
                bit: usize::MAX
            }
            .slot(link),
            None
        );
    }

    #[test]
    fn exact_boundary_fault_positions_rejected() {
        let t = table();
        let link = LinkConfig::paper();
        let schedule = BroadcastSchedule::compile(&t, link).unwrap();
        // One past the last flit and one past the last wire, exactly.
        let flit_edge = BitFault {
            flit: schedule.flit_count(),
            bit: 0,
        };
        let bit_edge = BitFault {
            flit: 0,
            bit: link.link_bits(),
        };
        assert!(inject(&t, link, &inputs(), flit_edge).is_err());
        assert!(inject(&t, link, &inputs(), bit_edge).is_err());
        // The last in-range position is accepted.
        let last = BitFault {
            flit: schedule.flit_count() - 1,
            bit: link.link_bits() - 1,
        };
        assert!(inject(&t, link, &inputs(), last).is_ok());
    }

    #[test]
    fn unaddressed_slot_fault_reports_zero_corruption() {
        // 16 breakpoints → 17 pairs over 3 flits of 8 slots: the last
        // flit's top slot backs no address, so corrupting it must leave
        // every output untouched and the report's `corrupted` list empty.
        let t = table();
        let link = LinkConfig::paper();
        let xs = inputs();
        let schedule = BroadcastSchedule::compile(&t, link).unwrap();
        let fault = BitFault {
            flit: schedule.flit_count() - 1,
            bit: (link.pairs_per_flit - 1) * 32 + 5,
        };
        let report = inject(&t, link, &xs, fault).unwrap();
        assert!(!report.tag_fault);
        assert!(report.corrupted.is_empty(), "no address selects that slot");
        assert_eq!(report.golden, report.faulty);
    }

    #[test]
    fn single_input_batch_round_trips_through_inject() {
        let t = table();
        let link = LinkConfig::paper();
        // One input whose address is 6 (flit 0, slot 3 — see the
        // slot-targeting test above), hit by a slope-MSB flip in exactly
        // that slot: the lone result must corrupt, and every report field
        // must have single-batch shape.
        let x = *inputs()
            .iter()
            .find(|x| t.lookup_address(**x) == 6)
            .expect("domain sweep covers address 6");
        let fault = BitFault {
            flit: 0,
            bit: 3 * 32 + 14,
        };
        let report = inject(&t, link, &[x], fault).unwrap();
        assert_eq!(report.golden.len(), 1);
        assert_eq!(report.faulty.len(), 1);
        assert_eq!(report.golden[0], t.eval(x));
        assert_eq!(report.corrupted, vec![0]);
    }

    #[test]
    fn panic_injector_fires_once_at_the_configured_tick() {
        let mut inj = FaultInjector::panic_after(0);
        assert!(!inj.fired());
        assert_eq!(inj.tick(), Some(InjectedFault::Panic));
        assert!(inj.fired());
        for _ in 0..8 {
            assert_eq!(inj.tick(), None);
        }

        let mut later = FaultInjector::bit_flip(3, 0);
        let fired_at = (0..8).find(|_| later.tick().is_some());
        assert_eq!(fired_at, Some(3));
    }

    #[test]
    fn golden_results_match_table() {
        let t = table();
        let xs = inputs();
        let report = inject(&t, LinkConfig::paper(), &xs, BitFault { flit: 0, bit: 0 }).unwrap();
        for (g, &x) in report.golden.iter().zip(&xs) {
            assert_eq!(*g, t.eval(x));
        }
    }
}
