//! Fault injection on the broadcast link.
//!
//! NOVA trades SRAM (with its well-understood ECC story) for long repeated
//! wires, so a reproduction should let users ask: *what does a single-event
//! upset on the link do to the results?* This module flips chosen bits of
//! a flit's wire image and reports how the approximation output degrades —
//! useful both as a robustness study and as a test oracle (a flipped bit
//! must corrupt only the neurons whose lookup address selected the
//! affected pair, and only in the affected flit).

use nova_approx::QuantizedPwl;
use nova_fixed::Fixed;

use crate::comparator::Comparators;
use crate::{BroadcastSchedule, Flit, LinkConfig, NocError};

/// A single-bit fault on the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitFault {
    /// Which flit of the schedule is hit (0-based).
    pub flit: usize,
    /// Which wire (bit position in the packed 257-bit image).
    pub bit: usize,
}

impl BitFault {
    /// The pair slot this fault lands in, or `None` if it hit the tag
    /// field.
    #[must_use]
    pub fn slot(&self, link: LinkConfig) -> Option<usize> {
        let data_bits = link.pairs_per_flit * 32;
        (self.bit < data_bits).then_some(self.bit / 32)
    }
}

/// Outcome of evaluating one input batch under a fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Per-input golden (fault-free) results.
    pub golden: Vec<Fixed>,
    /// Per-input faulty results.
    pub faulty: Vec<Fixed>,
    /// Indices of inputs whose result changed.
    pub corrupted: Vec<usize>,
    /// Whether the fault hit the tag field (corrupts pair *selection*, not
    /// values).
    pub tag_fault: bool,
}

/// Applies `fault` to the compiled schedule of `table` and evaluates
/// `inputs` through the (faulty) broadcast datapath.
///
/// # Errors
///
/// Propagates schedule compilation errors; returns
/// [`NocError::BadLinkConfig`] for an out-of-range fault position.
pub fn inject(
    table: &QuantizedPwl,
    link: LinkConfig,
    inputs: &[Fixed],
    fault: BitFault,
) -> Result<FaultReport, NocError> {
    let schedule = BroadcastSchedule::compile(table, link)?;
    if fault.flit >= schedule.flit_count() || fault.bit >= link.link_bits() {
        return Err(NocError::BadLinkConfig("fault position out of range"));
    }

    // Corrupt the wire image of the targeted flit.
    let mut flits: Vec<Flit> = schedule.flits().to_vec();
    let mut bytes = flits[fault.flit].pack();
    bytes[fault.bit / 8] ^= 1 << (fault.bit % 8);
    flits[fault.flit] = Flit::unpack(&bytes, link)?;
    let tag_fault = fault.bit >= link.pairs_per_flit * 32;

    // Evaluate every input through comparator → (faulty) pair → MAC.
    let comparators = Comparators::from_table(table);
    let flit_count = schedule.flit_count();
    let mut golden = Vec::with_capacity(inputs.len());
    let mut faulty = Vec::with_capacity(inputs.len());
    let mut corrupted = Vec::new();
    for (i, &x) in inputs.iter().enumerate() {
        let xc = comparators.clamp(x);
        let addr = comparators.address(xc);
        let tag = addr.tag(flit_count);
        let slot = addr.slot(flit_count);
        let gold_pair = schedule.flits()[usize::from(tag)].pair(slot, table.format());
        // The faulty network: the router matches tags against the (possibly
        // corrupted) tag field; a tag fault makes one flit answer for the
        // wrong addresses.
        let faulty_flit = flits
            .iter()
            .find(|f| f.tag() == tag)
            .unwrap_or(&flits[usize::from(tag) % flits.len()]);
        let bad_pair = faulty_flit.pair(slot, table.format());
        let g = gold_pair
            .slope
            .mul_add(xc, gold_pair.bias, table.rounding())
            .expect("table format");
        let f = bad_pair
            .slope
            .mul_add(xc, bad_pair.bias, table.rounding())
            .expect("table format");
        if g != f {
            corrupted.push(i);
        }
        golden.push(g);
        faulty.push(f);
    }
    Ok(FaultReport {
        golden,
        faulty,
        corrupted,
        tag_fault,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_approx::{fit, Activation};
    use nova_fixed::{Rounding, Q4_12};

    fn table() -> QuantizedPwl {
        let pwl =
            fit::fit_activation(Activation::Sigmoid, 16, fit::BreakpointStrategy::Uniform).unwrap();
        QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
    }

    fn inputs() -> Vec<Fixed> {
        (0..64)
            .map(|i| Fixed::from_f64(-7.5 + i as f64 * 0.23, Q4_12, Rounding::NearestEven))
            .collect()
    }

    #[test]
    fn fault_corrupts_only_the_addressed_slot() {
        let t = table();
        let link = LinkConfig::paper();
        let xs = inputs();
        // Flip a bit in slot 3 of flit 0 → only addresses with tag 0, slot
        // 3 (i.e. address 6) may change.
        let fault = BitFault {
            flit: 0,
            bit: 3 * 32 + 5,
        };
        assert_eq!(fault.slot(link), Some(3));
        let report = inject(&t, link, &xs, fault).unwrap();
        assert!(!report.tag_fault);
        for &i in &report.corrupted {
            let addr = t.lookup_address(xs[i]);
            assert_eq!(
                addr, 6,
                "input {i} with address {addr} must not be affected"
            );
        }
    }

    #[test]
    fn some_fault_always_detectable_with_coverage() {
        // A high-order slope bit flip must corrupt at least one input of a
        // batch that covers all 16 segments.
        let t = table();
        let link = LinkConfig::paper();
        let xs = inputs(); // spans the domain → all addresses covered
        let fault = BitFault { flit: 1, bit: 14 }; // slot 0 slope, high bit
        let report = inject(&t, link, &xs, fault).unwrap();
        assert!(!report.corrupted.is_empty(), "an MSB flip must be visible");
    }

    #[test]
    fn tag_fault_detected_as_selection_corruption() {
        let t = table();
        let link = LinkConfig::paper();
        let fault = BitFault { flit: 0, bit: 256 }; // the tag bit
        let report = inject(&t, link, &inputs(), fault).unwrap();
        assert!(report.tag_fault);
    }

    #[test]
    fn out_of_range_fault_rejected() {
        let t = table();
        let link = LinkConfig::paper();
        assert!(inject(&t, link, &inputs(), BitFault { flit: 5, bit: 0 }).is_err());
        assert!(inject(&t, link, &inputs(), BitFault { flit: 0, bit: 257 }).is_err());
    }

    #[test]
    fn golden_results_match_table() {
        let t = table();
        let xs = inputs();
        let report = inject(&t, LinkConfig::paper(), &xs, BitFault { flit: 0, bit: 0 }).unwrap();
        for (g, &x) in report.golden.iter().zip(&xs) {
            assert_eq!(*g, t.eval(x));
        }
    }
}
