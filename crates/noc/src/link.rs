//! The NOVA link: flit format and bit-exact packing.
//!
//! The paper's link is 257 bits: 16 × 16-bit words (8 `(slope, bias)`
//! pairs) plus one tag bit (Fig 3). [`LinkConfig`] generalizes the width
//! for the broadcast-width ablation; [`LinkConfig::paper`] is the 257-bit
//! default.

use nova_approx::SlopeBias;
use nova_fixed::{QFormat, Word16};

use crate::NocError;

/// Link geometry: pairs per flit and tag width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkConfig {
    /// `(slope, bias)` pairs carried per flit (paper: 8).
    pub pairs_per_flit: usize,
    /// Tag field width in bits (paper: 1).
    pub tag_bits: u8,
}

impl LinkConfig {
    /// The paper's 257-bit link: 8 pairs + 1 tag bit.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            pairs_per_flit: 8,
            tag_bits: 1,
        }
    }

    /// Creates a custom link.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::BadLinkConfig`] for zero pairs or zero tag bits.
    pub fn new(pairs_per_flit: usize, tag_bits: u8) -> Result<Self, NocError> {
        if pairs_per_flit == 0 {
            return Err(NocError::BadLinkConfig("pairs_per_flit must be > 0"));
        }
        if tag_bits == 0 || tag_bits > 8 {
            return Err(NocError::BadLinkConfig("tag_bits must be in 1..=8"));
        }
        Ok(Self {
            pairs_per_flit,
            tag_bits,
        })
    }

    /// Total link width in bits (data words + tag).
    #[must_use]
    pub fn link_bits(self) -> usize {
        self.pairs_per_flit * 32 + self.tag_bits as usize
    }

    /// Number of distinct tags the field encodes.
    #[must_use]
    pub fn tag_capacity(self) -> usize {
        1usize << self.tag_bits
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// One broadcast flit: up to [`LinkConfig::pairs_per_flit`] quantized
/// `(slope, bias)` pairs plus a tag.
///
/// Slots beyond the table's last pair are padded with zero words (the RTL
/// drives idle lanes low); the tag identifies which flit of a multi-flit
/// schedule this is, and is what the routers match lookup-address LSBs
/// against.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Flit {
    words: Vec<Word16>,
    tag: u8,
    config: LinkConfig,
}

impl Flit {
    /// Builds a flit from pairs (≤ `config.pairs_per_flit`) and a tag.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::BadLinkConfig`] if more pairs than slots are
    /// supplied or the tag exceeds the tag field, and
    /// [`NocError::FormatMismatch`] if a pair's words don't fit 16 bits.
    pub fn from_pairs(pairs: &[SlopeBias], tag: u8, config: LinkConfig) -> Result<Self, NocError> {
        if pairs.len() > config.pairs_per_flit {
            return Err(NocError::BadLinkConfig("more pairs than flit slots"));
        }
        if u32::from(tag) >= config.tag_capacity() as u32 {
            return Err(NocError::BadLinkConfig("tag exceeds tag field"));
        }
        let mut words = Vec::with_capacity(config.pairs_per_flit * 2);
        for p in pairs {
            words.push(Word16::from_fixed(p.slope).map_err(|_| NocError::FormatMismatch)?);
            words.push(Word16::from_fixed(p.bias).map_err(|_| NocError::FormatMismatch)?);
        }
        words.resize(config.pairs_per_flit * 2, Word16::default());
        Ok(Self { words, tag, config })
    }

    /// The flit's tag.
    #[must_use]
    pub fn tag(&self) -> u8 {
        self.tag
    }

    /// The link geometry this flit was built for.
    #[must_use]
    pub fn config(&self) -> LinkConfig {
        self.config
    }

    /// Decodes slot `i` as a `(slope, bias)` pair under `format`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (a router indexing bug).
    #[must_use]
    pub fn pair(&self, i: usize, format: QFormat) -> SlopeBias {
        assert!(i < self.config.pairs_per_flit, "slot {i} out of range");
        SlopeBias {
            slope: self.words[2 * i].to_fixed(format),
            bias: self.words[2 * i + 1].to_fixed(format),
        }
    }

    /// Bit-exact wire image, little-endian bit order: data words first
    /// (word 0 in bits 0..16), tag field last. The final byte is partially
    /// used — 257 bits pack into 33 bytes.
    #[must_use]
    pub fn pack(&self) -> Vec<u8> {
        let bits = self.config.link_bits();
        let mut out = vec![0u8; bits.div_ceil(8)];
        for (w, word) in self.words.iter().enumerate() {
            let base = w * 16;
            let b = word.bits();
            for i in 0..16 {
                if b & (1 << i) != 0 {
                    out[(base + i) / 8] |= 1 << ((base + i) % 8);
                }
            }
        }
        let tag_base = self.words.len() * 16;
        for i in 0..self.config.tag_bits as usize {
            if self.tag & (1 << i) != 0 {
                out[(tag_base + i) / 8] |= 1 << ((tag_base + i) % 8);
            }
        }
        out
    }

    /// Decodes a wire image produced by [`Flit::pack`].
    ///
    /// # Errors
    ///
    /// Returns [`NocError::BadLinkConfig`] if the byte length does not
    /// match the link width.
    pub fn unpack(bytes: &[u8], config: LinkConfig) -> Result<Self, NocError> {
        let bits = config.link_bits();
        if bytes.len() != bits.div_ceil(8) {
            return Err(NocError::BadLinkConfig("wire image length mismatch"));
        }
        let get_bit = |i: usize| (bytes[i / 8] >> (i % 8)) & 1;
        let mut words = Vec::with_capacity(config.pairs_per_flit * 2);
        for w in 0..config.pairs_per_flit * 2 {
            let mut v = 0u16;
            for i in 0..16 {
                v |= u16::from(get_bit(w * 16 + i)) << i;
            }
            words.push(Word16::new(v));
        }
        let tag_base = config.pairs_per_flit * 32;
        let mut tag = 0u8;
        for i in 0..config.tag_bits as usize {
            tag |= get_bit(tag_base + i) << i;
        }
        Ok(Self { words, tag, config })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_fixed::{Fixed, Rounding, Q4_12};

    fn pair(s: f64, b: f64) -> SlopeBias {
        SlopeBias {
            slope: Fixed::from_f64(s, Q4_12, Rounding::NearestEven),
            bias: Fixed::from_f64(b, Q4_12, Rounding::NearestEven),
        }
    }

    #[test]
    fn paper_link_is_257_bits() {
        let c = LinkConfig::paper();
        assert_eq!(c.link_bits(), 257);
        assert_eq!(c.tag_capacity(), 2);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let c = LinkConfig::paper();
        let pairs: Vec<SlopeBias> = (0..8)
            .map(|i| pair(0.1 * i as f64, -0.05 * i as f64))
            .collect();
        let f = Flit::from_pairs(&pairs, 1, c).unwrap();
        let bytes = f.pack();
        assert_eq!(bytes.len(), 33);
        let g = Flit::unpack(&bytes, c).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn partial_flit_pads_with_zeros() {
        let c = LinkConfig::paper();
        let f = Flit::from_pairs(&[pair(1.0, 2.0)], 0, c).unwrap();
        let decoded = f.pair(7, Q4_12);
        assert_eq!(decoded.slope.raw(), 0);
        assert_eq!(decoded.bias.raw(), 0);
    }

    #[test]
    fn decoded_pairs_match_inputs() {
        let c = LinkConfig::paper();
        let pairs: Vec<SlopeBias> = (0..8).map(|i| pair(-1.0 + 0.25 * i as f64, 0.5)).collect();
        let f = Flit::from_pairs(&pairs, 0, c).unwrap();
        for (i, p) in pairs.iter().enumerate() {
            assert_eq!(f.pair(i, Q4_12), *p, "slot {i}");
        }
    }

    #[test]
    fn too_many_pairs_rejected() {
        let c = LinkConfig::paper();
        let pairs: Vec<SlopeBias> = (0..9).map(|_| pair(0.0, 0.0)).collect();
        assert!(Flit::from_pairs(&pairs, 0, c).is_err());
    }

    #[test]
    fn oversized_tag_rejected() {
        let c = LinkConfig::paper();
        assert!(Flit::from_pairs(&[pair(0.0, 0.0)], 2, c).is_err());
    }

    #[test]
    fn custom_link_roundtrip() {
        let c = LinkConfig::new(4, 2).unwrap();
        assert_eq!(c.link_bits(), 130);
        let pairs: Vec<SlopeBias> = (0..4).map(|i| pair(i as f64 * 0.3, -1.0)).collect();
        let f = Flit::from_pairs(&pairs, 3, c).unwrap();
        let g = Flit::unpack(&f.pack(), c).unwrap();
        assert_eq!(f, g);
        assert_eq!(g.tag(), 3);
    }

    #[test]
    fn bad_link_configs_rejected() {
        assert!(LinkConfig::new(0, 1).is_err());
        assert!(LinkConfig::new(8, 0).is_err());
        assert!(LinkConfig::new(8, 9).is_err());
    }

    #[test]
    fn unpack_length_check() {
        let c = LinkConfig::paper();
        assert!(Flit::unpack(&[0u8; 32], c).is_err());
    }
}
