//! The NOVA NoC: a bit-accurate, cycle-accurate model of the paper's
//! in-network vector unit.
//!
//! NOVA stores the piecewise-linear slope/bias table "in the wires": every
//! NoC cycle a 257-bit flit carrying 8 quantized `(slope, bias)` pairs and
//! a tag bit snakes down a 1-D line of routers (Fig 4). Each router's
//! comparator front-end has already turned the local PE outputs into
//! 4-bit lookup addresses; the address LSB is matched against the flit's
//! tag bit and the remaining bits select the pair, which is latched and fed
//! to the per-neuron MAC (Fig 3). Clockless repeaters let a flit traverse
//! up to [`max hops`](LineConfig::max_hops_per_cycle) routers in a single
//! cycle (SMART-style), and the NoC clock runs at a multiple of the core
//! clock so a 16-breakpoint lookup still completes with single-cycle
//! effective latency (§IV).
//!
//! Modules:
//! - [`link`]: the flit format and bit-exact packing ([`Flit`],
//!   [`LinkConfig`]),
//! - [`schedule`]: the mapper's broadcast schedule (segments → flits, NoC
//!   clock multiplier),
//! - [`comparator`]: the lookup-address generator,
//! - [`router`]: the Fig 3 router micro-architecture,
//! - [`sim`]: the cycle-accurate line simulator with per-cycle stats.
//!
//! The headline functional property (tested exhaustively and by proptest):
//! running the NoC simulation over any input batch produces *bit-identical*
//! results to evaluating the quantized PWL table directly.
//!
//! # Example
//!
//! ```
//! use nova_approx::{fit, Activation, QuantizedPwl};
//! use nova_fixed::{Fixed, Q4_12, Rounding};
//! use nova_noc::{sim::BroadcastSim, LineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pwl = fit::fit_activation(Activation::Gelu, 16, fit::BreakpointStrategy::GreedyRefine)?;
//! let table = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven)?;
//! let config = LineConfig::paper_default(4, 128); // 4 routers × 128 neurons
//! let mut sim = BroadcastSim::new(config, &table)?;
//! let inputs = vec![vec![Fixed::from_f64(0.5, Q4_12, Rounding::NearestEven); 128]; 4];
//! let outcome = sim.run(&inputs)?;
//! assert_eq!(outcome.outputs[0][0], table.eval(inputs[0][0]));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;

pub mod comparator;
pub mod fault;
pub mod link;
pub mod multiline;
pub mod router;
pub mod rtl;
pub mod schedule;
pub mod sim;

pub use config::LineConfig;
pub use error::NocError;
pub use link::{Flit, LinkConfig};
pub use schedule::BroadcastSchedule;
