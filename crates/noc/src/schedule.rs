//! The NOVA mapper's broadcast schedule.
//!
//! The mapper (paper §IV) turns a quantized PWL table into the cycle-by-
//! cycle flit sequence the NoC broadcasts, and sets the NoC clock
//! multiplier so the whole lookup still costs one accelerator cycle: with
//! 16 segments and 8 pairs per flit, two flits are needed, so the NoC runs
//! at 2× the core clock.
//!
//! Pair-to-flit assignment is interleaved by address LSBs (the hardware
//! tag-match scheme): table entry `k` rides in flit `k mod flits` at slot
//! `k div flits`, so a router holding lookup address `a` matches flit tag
//! `a mod flits` and reads slot `a div flits`.

use nova_approx::QuantizedPwl;

use crate::{Flit, LinkConfig, NocError};

/// A compiled broadcast schedule: the flits to send each core cycle and
/// the NoC clock multiplier.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastSchedule {
    flits: Vec<Flit>,
    link: LinkConfig,
    segments: usize,
}

impl BroadcastSchedule {
    /// Compiles a schedule for `table` on `link`.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::TagOverflow`] if the table needs more flits than
    /// the tag field distinguishes (e.g. 32 segments on the paper's 1-bit
    /// tag link).
    pub fn compile(table: &QuantizedPwl, link: LinkConfig) -> Result<Self, NocError> {
        let segments = table.segments();
        let flits_needed = segments.div_ceil(link.pairs_per_flit);
        if flits_needed > link.tag_capacity() {
            return Err(NocError::TagOverflow {
                flits_needed,
                tag_capacity: link.tag_capacity(),
            });
        }
        let pairs = table.pairs();
        let mut flits = Vec::with_capacity(flits_needed);
        for tag in 0..flits_needed {
            // Entry k rides in flit (k mod flits) at slot (k div flits).
            let lane: Vec<_> = pairs
                .iter()
                .enumerate()
                .filter(|(k, _)| k % flits_needed == tag)
                .map(|(_, p)| *p)
                .collect();
            flits.push(Flit::from_pairs(&lane, tag as u8, link)?);
        }
        Ok(Self {
            flits,
            link,
            segments,
        })
    }

    /// The flit sequence, in broadcast order.
    #[must_use]
    pub fn flits(&self) -> &[Flit] {
        &self.flits
    }

    /// Flits per lookup (= distinct tags on the wire).
    #[must_use]
    pub fn flit_count(&self) -> usize {
        self.flits.len()
    }

    /// The NoC clock multiplier the mapper programs so the lookup costs a
    /// single core cycle (paper: 2× for 16 breakpoints).
    #[must_use]
    pub fn noc_clock_multiplier(&self) -> usize {
        self.flit_count()
    }

    /// Segments covered by this schedule.
    #[must_use]
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// The link geometry the schedule was compiled for.
    #[must_use]
    pub fn link(&self) -> LinkConfig {
        self.link
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_approx::{fit, Activation};
    use nova_fixed::{Rounding, Q4_12};

    fn table(segments: usize) -> QuantizedPwl {
        let pwl = fit::fit_activation(Activation::Tanh, segments, fit::BreakpointStrategy::Uniform)
            .unwrap();
        QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
    }

    #[test]
    fn sixteen_segments_need_two_flits_at_2x() {
        let s = BroadcastSchedule::compile(&table(16), LinkConfig::paper()).unwrap();
        assert_eq!(s.flit_count(), 2);
        assert_eq!(s.noc_clock_multiplier(), 2);
        assert_eq!(s.flits()[0].tag(), 0);
        assert_eq!(s.flits()[1].tag(), 1);
    }

    #[test]
    fn eight_segments_single_flit_1x() {
        let s = BroadcastSchedule::compile(&table(8), LinkConfig::paper()).unwrap();
        assert_eq!(s.flit_count(), 1);
        assert_eq!(s.noc_clock_multiplier(), 1);
    }

    #[test]
    fn interleaved_assignment_matches_tag_match() {
        // Entry k must be found at flit (k mod 2), slot (k div 2) — the
        // address-LSB tag-match contract of the router.
        let t = table(16);
        let s = BroadcastSchedule::compile(&t, LinkConfig::paper()).unwrap();
        for (k, p) in t.pairs().iter().enumerate() {
            let flit = &s.flits()[k % 2];
            let decoded = flit.pair(k / 2, t.format());
            assert_eq!(decoded, *p, "entry {k}");
        }
    }

    #[test]
    fn thirty_two_segments_overflow_paper_tag() {
        let err = BroadcastSchedule::compile(&table(32), LinkConfig::paper()).unwrap_err();
        assert!(matches!(
            err,
            NocError::TagOverflow {
                flits_needed: 4,
                tag_capacity: 2
            }
        ));
    }

    #[test]
    fn wider_tag_accepts_more_flits() {
        let link = LinkConfig::new(8, 2).unwrap();
        let s = BroadcastSchedule::compile(&table(32), link).unwrap();
        assert_eq!(s.flit_count(), 4);
        assert_eq!(s.noc_clock_multiplier(), 4);
    }

    #[test]
    fn narrow_link_ablation() {
        // 4 pairs per flit: 16 segments → 4 flits → 4× NoC clock.
        let link = LinkConfig::new(4, 2).unwrap();
        let s = BroadcastSchedule::compile(&table(16), link).unwrap();
        assert_eq!(s.noc_clock_multiplier(), 4);
    }
}
