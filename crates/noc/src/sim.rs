//! The cycle-accurate line-broadcast simulator (paper Fig 4).
//!
//! Each NoC cycle, one flit of the compiled [`BroadcastSchedule`] is
//! injected at the head of the line. A flit propagates combinationally
//! through up to [`LineConfig::max_hops_per_cycle`] router bypasses
//! (SMART-style clockless repeaters), snooping every router it passes; if
//! routers remain beyond the reach, it is parked in the next router's east
//! input register and continues the following cycle. Once a router has
//! latched pairs for all its neurons, its MAC stage fires one accelerator
//! cycle later.
//!
//! The simulator therefore reproduces both of the paper's headline timing
//! facts: (a) for ≤ 10 routers and 16 breakpoints at a 2× NoC clock the
//! effective lookup latency is one core cycle (plus the MAC cycle the LUT
//! baselines also pay), and (b) beyond the single-cycle reach the
//! broadcast degrades gracefully to multi-cycle traversal (§V.A).

use nova_approx::QuantizedPwl;
use nova_fixed::Fixed;

use crate::router::Router;
use crate::{BroadcastSchedule, LineConfig, NocError};

/// Aggregate statistics of one broadcast batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// NoC cycles consumed until the last router latched its last pair.
    pub noc_cycles: u64,
    /// Effective lookup latency in accelerator (core) cycles, including
    /// the MAC cycle.
    pub core_cycle_latency: u64,
    /// Flits injected at the line head.
    pub flits_injected: u64,
    /// Total router-to-router hops traversed.
    pub hops: u64,
    /// Flits parked in east input registers (reach boundaries).
    pub buffered: u64,
    /// Total `(slope, bias)` pairs latched across all routers.
    pub pairs_latched: u64,
    /// Total MAC operations.
    pub mac_ops: u64,
}

/// Result of one batch: per-router per-neuron outputs plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// `outputs[r][n]` is neuron `n` of router `r`.
    pub outputs: Vec<Vec<Fixed>>,
    /// Cycle/activity statistics.
    pub stats: SimStats,
}

/// The line simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastSim {
    config: LineConfig,
    schedule: BroadcastSchedule,
    table: QuantizedPwl,
    routers: Vec<Router>,
    /// In-flight flit scratch `(schedule index, next router)`, reused
    /// across batches so the steady-state broadcast loop never touches
    /// the allocator. Always empty between [`run`](Self::run) calls.
    in_flight: Vec<(usize, usize)>,
    /// Double-buffer partner of `in_flight` (same lifecycle).
    flying_scratch: Vec<(usize, usize)>,
}

impl BroadcastSim {
    /// Builds a simulator for `table` on the given line.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and schedule compilation
    /// errors.
    pub fn new(config: LineConfig, table: &QuantizedPwl) -> Result<Self, NocError> {
        config.validate()?;
        let schedule = BroadcastSchedule::compile(table, config.link)?;
        let routers = (0..config.routers).map(|_| Router::new(table)).collect();
        Ok(Self {
            config,
            schedule,
            table: table.clone(),
            routers,
            in_flight: Vec::new(),
            flying_scratch: Vec::new(),
        })
    }

    /// The quantized table the line is programmed with.
    #[must_use]
    pub fn table(&self) -> &QuantizedPwl {
        &self.table
    }

    /// The compiled schedule (flit count, NoC multiplier).
    #[must_use]
    pub fn schedule(&self) -> &BroadcastSchedule {
        &self.schedule
    }

    /// The line configuration.
    #[must_use]
    pub fn config(&self) -> LineConfig {
        self.config
    }

    /// Per-batch broadcast latency in core cycles, computed without
    /// running a batch. The broadcast is data-independent — one flit
    /// injects per NoC cycle and every flit advances `max_hops_per_cycle`
    /// routers per cycle — so the cycle count [`run`](Self::run) reports
    /// is a pure function of the schedule and geometry.
    #[must_use]
    pub fn nominal_core_cycle_latency(&self) -> u64 {
        let flits = self.schedule.flit_count() as u64;
        let reach = self.config.max_hops_per_cycle as u64;
        let span = (self.config.routers as u64).saturating_sub(1);
        // A flit spends `ceil(span/reach)` cycles on the line (the first
        // of which is its injection cycle), and the last flit injects on
        // NoC cycle `flits`.
        let travel = span.div_ceil(reach).max(1);
        let noc_cycles = flits + travel - 1;
        let multiplier = self.schedule.noc_clock_multiplier() as u64;
        noc_cycles.div_ceil(multiplier) + 1 // +1: the MAC stage
    }

    /// Switches the active operator table (e.g. softmax-exp → GELU between
    /// layer phases). For NOVA this is free in hardware — the next
    /// broadcast simply carries the new pairs — so the simulator just
    /// recompiles the schedule and reprograms the comparators; no cycles
    /// are consumed.
    ///
    /// # Errors
    ///
    /// Propagates schedule compilation errors (e.g. tag overflow).
    pub fn set_table(&mut self, table: &QuantizedPwl) -> Result<(), NocError> {
        self.schedule = BroadcastSchedule::compile(table, self.config.link)?;
        self.table = table.clone();
        for router in &mut self.routers {
            *router = Router::new(table);
        }
        Ok(())
    }

    /// Runs one batch: `inputs[r][n]` is the PE output of neuron `n` at
    /// router `r`. Returns per-neuron approximated values plus stats.
    ///
    /// Compatibility wrapper over [`run_flat`](Self::run_flat) — it pays
    /// one flatten/reshape round trip, so hot loops should hold flat
    /// buffers and call `run_flat` directly.
    ///
    /// # Errors
    ///
    /// - [`NocError::InputShape`] if the batch shape mismatches the line,
    /// - [`NocError::FormatMismatch`] if any word uses the wrong Q-format.
    pub fn run(&mut self, inputs: &[Vec<Fixed>]) -> Result<Outcome, NocError> {
        let config = self.config;
        run_nested_via_flat(config, inputs, |flat, out| self.run_flat(flat, out))
    }

    /// Runs one batch over flat row-major buffers: slot `r * neurons + n`
    /// of `inputs` is the PE output of neuron `n` at router `r`, and the
    /// approximated value lands in the same slot of `outputs`. This is
    /// the zero-copy hot path, and it does *not* walk flits router by
    /// router:
    ///
    /// - **Data.** The wire is exact: a compiled schedule's `Word16`
    ///   round trip is lossless for every ≤ 16-bit format (wider formats
    ///   cannot compile a schedule at all), so the pairs every router
    ///   latches are bit-identical to the table — and the whole grid can
    ///   run through the table's SoA batch kernel
    ///   ([`QuantizedPwl::eval_to_slice_unchecked`]) in one call.
    /// - **Timing/activity.** The broadcast is data-independent (see
    ///   [`nominal_core_cycle_latency`](Self::nominal_core_cycle_latency)),
    ///   so every [`SimStats`] field and every router counter is a closed
    ///   form of the schedule and geometry.
    ///
    /// Equality of outputs, batch stats and per-router counters with the
    /// flit-level simulation is pinned against
    /// [`run_flat_reference`](Self::run_flat_reference) across geometries
    /// and batches.
    ///
    /// # Errors
    ///
    /// - [`NocError::InputShape`] if either buffer is not exactly
    ///   `routers × neurons_per_router` slots,
    /// - [`NocError::FormatMismatch`] if any word uses the wrong Q-format.
    pub fn run_flat(
        &mut self,
        inputs: &[Fixed],
        outputs: &mut [Fixed],
    ) -> Result<SimStats, NocError> {
        self.validate_flat(inputs, outputs.len())?;
        // Functional stage: one SoA kernel call over the whole grid.
        self.table.eval_to_slice_unchecked(inputs, outputs);

        // Timing/activity stage. Each flit occupies the line for
        // `1 + parks` cycles, parking at every reach boundary (positions
        // k·reach < routers, k ≥ 1 — there are ceil(routers/reach) − 1 of
        // them), and one flit injects per cycle, so the last flit retires
        // on cycle `flits + parks`. Every router snoops every flit; each
        // neuron latches exactly one pair and fires one MAC per batch.
        let flits = self.schedule.flit_count() as u64;
        let reach = self.config.max_hops_per_cycle as u64;
        let routers = self.config.routers as u64;
        let neurons = self.config.neurons_per_router as u64;
        let parks = routers.div_ceil(reach).saturating_sub(1);
        let mut stats = SimStats {
            noc_cycles: flits + parks,
            flits_injected: flits,
            hops: flits * routers,
            buffered: flits * parks,
            ..SimStats::default()
        };
        for (r, router) in self.routers.iter_mut().enumerate() {
            router.stats.flits_seen += flits;
            router.stats.pairs_latched += neurons;
            router.stats.mac_ops += neurons;
            if r > 0 && r as u64 % reach == 0 {
                router.stats.flits_buffered += flits;
            }
            // Batch stats sum the routers' *cumulative* latch/MAC
            // counters, exactly as the reference loop reports them.
            stats.pairs_latched += router.stats.pairs_latched;
            stats.mac_ops += router.stats.mac_ops;
        }
        let multiplier = self.schedule.noc_clock_multiplier() as u64;
        stats.core_cycle_latency = stats.noc_cycles.div_ceil(multiplier) + 1;
        Ok(stats)
    }

    /// The cycle-accurate flit-level simulation `run_flat` is an analytic
    /// fast path for: injects one schedule flit per NoC cycle, flies it
    /// through up to `reach` router bypasses, parks it at reach
    /// boundaries, snoops and latches per router, then fires every
    /// router's MAC stage. Kept as the executable specification — the
    /// equivalence test drives both paths over the same batches and
    /// demands identical outputs, batch stats and router counters — and
    /// for microbenching the fast path's speedup.
    ///
    /// # Errors
    ///
    /// Same contract as [`run_flat`](Self::run_flat).
    pub fn run_flat_reference(
        &mut self,
        inputs: &[Fixed],
        outputs: &mut [Fixed],
    ) -> Result<SimStats, NocError> {
        self.validate_flat(inputs, outputs.len())?;
        let flits = self.schedule.flit_count();
        let reach = self.config.max_hops_per_cycle;
        let neurons = self.config.neurons_per_router;

        // Comparator stage (parallel across routers, before broadcast).
        for (router, xs) in self.routers.iter_mut().zip(inputs.chunks(neurons.max(1))) {
            router.load_inputs(xs);
        }

        // In-flight flits: (schedule index, next router to visit). The
        // scratch vectors live on `self` purely for capacity reuse; both
        // are empty outside this call.
        let mut in_flight = std::mem::take(&mut self.in_flight);
        let mut still_flying = std::mem::take(&mut self.flying_scratch);
        let mut injected = 0usize;
        let mut stats = SimStats::default();
        let mut cycle: u64 = 0;

        while injected < flits || !in_flight.is_empty() {
            cycle += 1;
            // Advance flits already on the line (ahead of today's
            // injection, preserving order; no two flits can collide since
            // they all move `reach` hops per cycle).
            still_flying.clear();
            for (fi, pos) in in_flight.drain(..) {
                let (next, parked) = fly(
                    &self.schedule,
                    &self.table,
                    &mut self.routers,
                    fi,
                    pos,
                    reach,
                    &mut stats,
                );
                if parked {
                    still_flying.push((fi, next));
                }
            }
            // Inject this cycle's flit at router 0.
            if injected < flits {
                let fi = injected;
                injected += 1;
                stats.flits_injected += 1;
                let (next, parked) = fly(
                    &self.schedule,
                    &self.table,
                    &mut self.routers,
                    fi,
                    0,
                    reach,
                    &mut stats,
                );
                if parked {
                    still_flying.push((fi, next));
                }
            }
            std::mem::swap(&mut in_flight, &mut still_flying);
        }
        stats.noc_cycles = cycle;
        in_flight.clear();
        still_flying.clear();
        self.in_flight = in_flight;
        self.flying_scratch = still_flying;

        // MAC stage: one core cycle after the last latch, written into
        // the caller's buffer in place.
        for (router, row) in self
            .routers
            .iter_mut()
            .zip(outputs.chunks_mut(neurons.max(1)))
        {
            router.compute_into(row)?;
        }
        for router in &self.routers {
            stats.pairs_latched += router.stats.pairs_latched;
            stats.mac_ops += router.stats.mac_ops;
        }
        let multiplier = self.schedule.noc_clock_multiplier() as u64;
        stats.core_cycle_latency = cycle.div_ceil(multiplier) + 1;
        Ok(stats)
    }

    fn validate_flat(&self, inputs: &[Fixed], out_len: usize) -> Result<(), NocError> {
        let slots = self.config.routers * self.config.neurons_per_router;
        if inputs.len() != slots || out_len != slots {
            return Err(NocError::InputShape {
                routers: self.config.routers,
                neurons: self.config.neurons_per_router,
                got: (inputs.len(), out_len),
            });
        }
        if inputs.iter().any(|x| x.format() != self.table.format()) {
            return Err(NocError::FormatMismatch);
        }
        Ok(())
    }
}

/// The shared nested-batch compatibility shim: validates row shapes
/// (reporting the offending row's width), flattens, runs the flat path
/// and reshapes the result — used by both [`BroadcastSim::run`] and
/// `SegmentedNoc::run` so their diagnostics cannot drift.
pub(crate) fn run_nested_via_flat(
    config: LineConfig,
    inputs: &[Vec<Fixed>],
    run_flat: impl FnOnce(&[Fixed], &mut [Fixed]) -> Result<SimStats, NocError>,
) -> Result<Outcome, NocError> {
    let shape_err = |got| NocError::InputShape {
        routers: config.routers,
        neurons: config.neurons_per_router,
        got,
    };
    if inputs.len() != config.routers {
        return Err(shape_err((inputs.len(), 0)));
    }
    for row in inputs {
        if row.len() != config.neurons_per_router {
            return Err(shape_err((inputs.len(), row.len())));
        }
    }
    let flat: Vec<Fixed> = inputs.iter().flatten().copied().collect();
    let mut out = flat.clone();
    let stats = run_flat(&flat, &mut out)?;
    let outputs = out
        .chunks(config.neurons_per_router.max(1))
        .map(<[Fixed]>::to_vec)
        .collect();
    Ok(Outcome { outputs, stats })
}

/// Propagates flit `fi` starting at router `pos` for up to `reach` hops.
/// Returns `(next position, parked?)`. Free function so the schedule's
/// flit can be *borrowed* while the routers mutate — the hot loop snoops
/// without cloning the flit's word vector.
fn fly(
    schedule: &BroadcastSchedule,
    table: &QuantizedPwl,
    routers: &mut [Router],
    fi: usize,
    pos: usize,
    reach: usize,
    stats: &mut SimStats,
) -> (usize, bool) {
    let flits = schedule.flit_count();
    let flit = &schedule.flits()[fi];
    let mut p = pos;
    let mut hops = 0usize;
    while p < routers.len() && hops < reach {
        routers[p].snoop(flit, flits, table);
        p += 1;
        hops += 1;
    }
    stats.hops += hops as u64;
    if p < routers.len() {
        // Parked in router p's east input register.
        routers[p].buffer();
        stats.buffered += 1;
        (p, true)
    } else {
        (p, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkConfig;
    use nova_approx::{fit, Activation};
    use nova_fixed::{Rounding, Q4_12};

    fn table(segments: usize) -> QuantizedPwl {
        let pwl = fit::fit_activation(
            Activation::Sigmoid,
            segments,
            fit::BreakpointStrategy::Uniform,
        )
        .unwrap();
        QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
    }

    fn batch(routers: usize, neurons: usize, seed: f64) -> Vec<Vec<Fixed>> {
        (0..routers)
            .map(|r| {
                (0..neurons)
                    .map(|n| {
                        let x = ((r * neurons + n) as f64 * 0.7 + seed).sin() * 6.0;
                        Fixed::from_f64(x, Q4_12, Rounding::NearestEven)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn functional_equivalence_with_table() {
        let t = table(16);
        let mut sim = BroadcastSim::new(LineConfig::paper_default(10, 32), &t).unwrap();
        let inputs = batch(10, 32, 0.3);
        let out = sim.run(&inputs).unwrap();
        for (r, row) in inputs.iter().enumerate() {
            for (n, &x) in row.iter().enumerate() {
                assert_eq!(out.outputs[r][n], t.eval(x), "router {r} neuron {n}");
            }
        }
    }

    #[test]
    fn paper_latency_16_breakpoints_10_routers() {
        // 2 flits at 2× NoC clock, single-cycle reach: 2 NoC cycles =
        // 1 core cycle + 1 MAC cycle = 2 core cycles (same as the LUT
        // baseline's lookup + MAC).
        let t = table(16);
        let mut sim = BroadcastSim::new(LineConfig::paper_default(10, 8), &t).unwrap();
        let out = sim.run(&batch(10, 8, 0.0)).unwrap();
        assert_eq!(out.stats.flits_injected, 2);
        assert_eq!(out.stats.noc_cycles, 2);
        assert_eq!(out.stats.core_cycle_latency, 2);
        assert_eq!(
            out.stats.buffered, 0,
            "10 routers are single-cycle reachable"
        );
    }

    #[test]
    fn eight_breakpoints_single_flit() {
        let t = table(8);
        let mut sim = BroadcastSim::new(LineConfig::paper_default(8, 4), &t).unwrap();
        let out = sim.run(&batch(8, 4, 1.0)).unwrap();
        assert_eq!(out.stats.flits_injected, 1);
        assert_eq!(out.stats.noc_cycles, 1);
        assert_eq!(out.stats.core_cycle_latency, 2); // lookup + MAC
    }

    #[test]
    fn nominal_latency_matches_simulation() {
        // The analytic per-batch latency must agree with the simulator
        // across flit counts, reaches and NoC clock multipliers.
        let cases = [
            (16, 10, 8, 10), // paper default: single-cycle reach
            (8, 8, 4, 10),   // one flit
            (16, 25, 2, 10), // beyond reach: multicycle traversal
            (16, 25, 2, 4),  // shorter reach still
            (16, 1, 4, 10),  // degenerate single-router line
        ];
        for (breakpoints, routers, neurons, reach) in cases {
            let t = table(breakpoints);
            let mut config = LineConfig::paper_default(routers, neurons);
            config.max_hops_per_cycle = reach;
            let mut sim = BroadcastSim::new(config, &t).unwrap();
            let nominal = sim.nominal_core_cycle_latency();
            let out = sim.run(&batch(routers, neurons, 0.5)).unwrap();
            assert_eq!(
                nominal, out.stats.core_cycle_latency,
                "{breakpoints} breakpoints, {routers} routers, reach {reach}"
            );
        }
    }

    #[test]
    fn beyond_reach_goes_multicycle() {
        let t = table(16);
        let mut config = LineConfig::paper_default(25, 2);
        config.max_hops_per_cycle = 10;
        let mut sim = BroadcastSim::new(config, &t).unwrap();
        let out = sim.run(&batch(25, 2, 2.0)).unwrap();
        // Each flit needs 3 cycles to cross 25 routers; second flit is
        // pipelined one cycle behind: 4 NoC cycles total.
        assert_eq!(out.stats.noc_cycles, 4);
        assert!(out.stats.buffered > 0);
        // Functional result still exact.
        let inputs = batch(25, 2, 2.0);
        for (r, row) in inputs.iter().enumerate() {
            for (n, &x) in row.iter().enumerate() {
                assert_eq!(out.outputs[r][n], t.eval(x));
            }
        }
    }

    #[test]
    fn stats_hops_accounting() {
        let t = table(8);
        let mut sim = BroadcastSim::new(LineConfig::paper_default(4, 2), &t).unwrap();
        let out = sim.run(&batch(4, 2, 0.5)).unwrap();
        assert_eq!(out.stats.hops, 4, "one flit × four routers");
        assert_eq!(out.stats.pairs_latched, 8);
        assert_eq!(out.stats.mac_ops, 8);
    }

    #[test]
    fn flat_fast_path_matches_cycle_accurate_reference() {
        // The analytic fast path must be indistinguishable from the
        // flit-level simulation: same outputs, same batch stats, same
        // per-router cumulative counters — across geometries (within
        // reach, beyond reach, boundary-aligned, degenerate single
        // router) and across consecutive batches (router counters
        // accumulate; the analytics must track that).
        let cases = [
            (16, 10, 8, 10), // paper default: single-cycle reach
            (8, 8, 4, 10),   // one flit
            (16, 25, 2, 10), // beyond reach
            (16, 25, 2, 4),  // many parks per flit
            (16, 20, 3, 5),  // router count a multiple of the reach
            (16, 21, 3, 10), // one router past two reach spans
            (16, 1, 4, 10),  // degenerate single-router line
        ];
        for (breakpoints, routers, neurons, reach) in cases {
            let t = table(breakpoints);
            let mut config = LineConfig::paper_default(routers, neurons);
            config.max_hops_per_cycle = reach;
            let mut fast = BroadcastSim::new(config, &t).unwrap();
            let mut reference = BroadcastSim::new(config, &t).unwrap();
            for round in 0..3 {
                let inputs: Vec<Fixed> = batch(routers, neurons, round as f64 * 0.3)
                    .into_iter()
                    .flatten()
                    .collect();
                let mut out_fast = vec![Fixed::zero(Q4_12); inputs.len()];
                let mut out_ref = out_fast.clone();
                let sf = fast.run_flat(&inputs, &mut out_fast).unwrap();
                let sr = reference.run_flat_reference(&inputs, &mut out_ref).unwrap();
                let label = format!(
                    "{breakpoints} breakpoints, {routers} routers, reach {reach}, round {round}"
                );
                assert_eq!(out_fast, out_ref, "outputs: {label}");
                assert_eq!(sf, sr, "batch stats: {label}");
                for (r, (a, b)) in fast.routers.iter().zip(&reference.routers).enumerate() {
                    assert_eq!(a.stats, b.stats, "router {r} counters: {label}");
                }
            }
        }
    }

    #[test]
    fn input_shape_validation() {
        let t = table(16);
        let mut sim = BroadcastSim::new(LineConfig::paper_default(4, 8), &t).unwrap();
        assert!(matches!(
            sim.run(&batch(3, 8, 0.0)),
            Err(NocError::InputShape { .. })
        ));
        assert!(matches!(
            sim.run(&batch(4, 7, 0.0)),
            Err(NocError::InputShape { .. })
        ));
    }

    #[test]
    fn format_validation() {
        let t = table(16);
        let mut sim = BroadcastSim::new(LineConfig::paper_default(1, 1), &t).unwrap();
        let wrong = vec![vec![Fixed::zero(nova_fixed::Q6_10)]];
        assert!(matches!(sim.run(&wrong), Err(NocError::FormatMismatch)));
    }

    #[test]
    fn reusable_across_batches() {
        let t = table(16);
        let mut sim = BroadcastSim::new(LineConfig::paper_default(2, 4), &t).unwrap();
        let a = sim.run(&batch(2, 4, 0.1)).unwrap();
        let b = sim.run(&batch(2, 4, 0.9)).unwrap();
        assert_ne!(a.outputs, b.outputs);
        // Second batch computed correctly too.
        let inputs = batch(2, 4, 0.9);
        assert_eq!(b.outputs[1][3], t.eval(inputs[1][3]));
    }

    #[test]
    fn table_switch_between_batches() {
        // Operator switching mid-stream: exp for softmax, then gelu for
        // the FFN — zero-cost in NOVA, and both phases bit-exact.
        let exp = table(16);
        let gelu_pwl =
            fit::fit_activation(Activation::Gelu, 16, fit::BreakpointStrategy::Uniform).unwrap();
        let gelu = QuantizedPwl::from_pwl(&gelu_pwl, Q4_12, Rounding::NearestEven).unwrap();
        let mut sim = BroadcastSim::new(LineConfig::paper_default(4, 8), &exp).unwrap();
        let inputs = batch(4, 8, 0.4);
        let a = sim.run(&inputs).unwrap();
        assert_eq!(a.outputs[2][3], exp.eval(inputs[2][3]));
        sim.set_table(&gelu).unwrap();
        let b = sim.run(&inputs).unwrap();
        assert_eq!(b.outputs[2][3], gelu.eval(inputs[2][3]));
        assert_ne!(a.outputs, b.outputs);
    }

    #[test]
    fn narrow_link_ablation_still_exact() {
        let t = table(16);
        let mut config = LineConfig::paper_default(4, 4);
        config.link = LinkConfig::new(4, 2).unwrap();
        let mut sim = BroadcastSim::new(config, &t).unwrap();
        let inputs = batch(4, 4, 0.2);
        let out = sim.run(&inputs).unwrap();
        assert_eq!(out.stats.flits_injected, 4); // 16 segments / 4 per flit
        assert_eq!(out.outputs[0][0], t.eval(inputs[0][0]));
    }
}
