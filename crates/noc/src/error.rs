use std::error::Error;
use std::fmt;

/// Errors produced by NoC configuration, scheduling and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NocError {
    /// The table needs more flits than the tag field can distinguish.
    TagOverflow {
        /// Flits required for the table.
        flits_needed: usize,
        /// Flits distinguishable by the configured tag width.
        tag_capacity: usize,
    },
    /// A link configuration was invalid (zero pairs per flit or zero tag
    /// bits with multiple flits).
    BadLinkConfig(&'static str),
    /// A line configuration was invalid (zero routers/neurons).
    BadLineConfig(&'static str),
    /// The input batch shape does not match the line configuration.
    InputShape {
        /// Routers in the configuration.
        routers: usize,
        /// Neurons per router in the configuration.
        neurons: usize,
        /// What the caller supplied (routers, first bad row length).
        got: (usize, usize),
    },
    /// A word in the input batch used a different Q-format than the table.
    FormatMismatch,
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::TagOverflow { flits_needed, tag_capacity } => write!(
                f,
                "table needs {flits_needed} flits but the tag field distinguishes only {tag_capacity}"
            ),
            NocError::BadLinkConfig(msg) => write!(f, "bad link config: {msg}"),
            NocError::BadLineConfig(msg) => write!(f, "bad line config: {msg}"),
            NocError::InputShape { routers, neurons, got } => write!(
                f,
                "input batch shape {got:?} does not match {routers} routers × {neurons} neurons"
            ),
            NocError::FormatMismatch => write!(f, "input word format does not match the table"),
        }
    }
}

impl Error for NocError {}
