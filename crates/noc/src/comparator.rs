//! The comparator front-end: PE outputs → lookup addresses.
//!
//! Each PE output is compared against the quantized breakpoint thresholds
//! (Fig 2's `d_n` registers); the thermometer code of "how many thresholds
//! are ≤ x" is the lookup address. For 16 segments this is a 4-bit address
//! whose LSB is matched against the flit tag on the NoC.

use nova_approx::QuantizedPwl;
use nova_fixed::Fixed;

/// A lookup address produced by the comparator tree (segment index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LookupAddress(pub u8);

impl LookupAddress {
    /// The tag this address expects on the link, given the broadcast's
    /// flit count (address modulo flits — LSB for the paper's 2 flits).
    #[must_use]
    pub fn tag(self, flits: usize) -> u8 {
        (usize::from(self.0) % flits.max(1)) as u8
    }

    /// The pair slot within the matching flit (remaining address bits).
    #[must_use]
    pub fn slot(self, flits: usize) -> usize {
        usize::from(self.0) / flits.max(1)
    }
}

/// The per-router comparator bank: thresholds plus clamp bounds, extracted
/// from a quantized table.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparators {
    thresholds: Vec<Fixed>,
    lo: Fixed,
    hi: Fixed,
}

impl Comparators {
    /// Builds the comparator bank from the table it will address.
    #[must_use]
    pub fn from_table(table: &QuantizedPwl) -> Self {
        let (lo, hi) = table.clamp_bounds();
        Self {
            thresholds: table.breakpoints().to_vec(),
            lo,
            hi,
        }
    }

    /// Number of thresholds (segments − 1).
    #[must_use]
    pub fn thresholds(&self) -> usize {
        self.thresholds.len()
    }

    /// The saturation bounds of the comparator front-end.
    #[must_use]
    pub fn bounds(&self) -> (Fixed, Fixed) {
        (self.lo, self.hi)
    }

    /// Clamps a word to the bank's saturation bounds (shared with the MAC
    /// stage so address and operand always agree).
    #[must_use]
    pub fn clamp(&self, x: Fixed) -> Fixed {
        if x.raw() < self.lo.raw() {
            self.lo
        } else if x.raw() > self.hi.raw() {
            self.hi
        } else {
            x
        }
    }

    /// Generates the lookup address for a PE output word: clamp, then
    /// count thresholds `≤ x` (the hardware thermometer encode).
    #[must_use]
    pub fn address(&self, x: Fixed) -> LookupAddress {
        let raw = x.raw().clamp(self.lo.raw(), self.hi.raw());
        let count = self.thresholds.partition_point(|d| d.raw() <= raw);
        LookupAddress(count as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_approx::{fit, Activation, QuantizedPwl};
    use nova_fixed::{Rounding, Q4_12};

    fn table(segments: usize) -> QuantizedPwl {
        let pwl = fit::fit_activation(
            Activation::Sigmoid,
            segments,
            fit::BreakpointStrategy::Uniform,
        )
        .unwrap();
        QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
    }

    #[test]
    fn addresses_match_table_lookup() {
        let t = table(16);
        let c = Comparators::from_table(&t);
        for raw in (Q4_12.min_raw()..Q4_12.max_raw()).step_by(997) {
            let x = Fixed::from_raw(raw, Q4_12).unwrap();
            assert_eq!(usize::from(c.address(x).0), t.lookup_address(x));
        }
    }

    #[test]
    fn tag_slot_decomposition_paper_scheme() {
        // 16 segments over 2 flits: address LSB = tag, upper bits = slot.
        for addr in 0u8..16 {
            let a = LookupAddress(addr);
            assert_eq!(a.tag(2), addr & 1);
            assert_eq!(a.slot(2), usize::from(addr >> 1));
        }
    }

    #[test]
    fn single_flit_tag_is_zero() {
        for addr in 0u8..8 {
            let a = LookupAddress(addr);
            assert_eq!(a.tag(1), 0);
            assert_eq!(a.slot(1), usize::from(addr));
        }
    }

    #[test]
    fn tag_slot_reconstruct_address() {
        for flits in [1usize, 2, 4] {
            for addr in 0u8..16 {
                let a = LookupAddress(addr);
                let rebuilt = a.slot(flits) * flits + usize::from(a.tag(flits));
                assert_eq!(rebuilt, usize::from(addr));
            }
        }
    }

    #[test]
    fn clamping_saturates_addresses() {
        let t = table(8);
        let c = Comparators::from_table(&t);
        let min = Fixed::from_raw(Q4_12.min_raw(), Q4_12).unwrap();
        let max = Fixed::from_raw(Q4_12.max_raw(), Q4_12).unwrap();
        assert_eq!(c.address(min).0, 0);
        assert_eq!(usize::from(c.address(max).0), t.segments() - 1);
    }
}
