//! Area/power report types shared by the bench harness and the core
//! engine.

use std::fmt;

/// A paired area (mm²) and power (mW) result — one Table III cell pair.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaPower {
    /// Total area in mm².
    pub area_mm2: f64,
    /// Total power in mW.
    pub power_mw: f64,
}

nova_serde::impl_serde_struct!(AreaPower { area_mm2, power_mw });

impl AreaPower {
    /// Creates a report from raw values.
    #[must_use]
    pub fn new(area_mm2: f64, power_mw: f64) -> Self {
        Self { area_mm2, power_mw }
    }

    /// Sums two reports (e.g. accumulate routers into an accelerator
    /// total).
    #[must_use]
    pub fn plus(self, other: AreaPower) -> AreaPower {
        AreaPower {
            area_mm2: self.area_mm2 + other.area_mm2,
            power_mw: self.power_mw + other.power_mw,
        }
    }

    /// Scales both fields (e.g. replicate one router `n` times).
    #[must_use]
    pub fn scaled(self, factor: f64) -> AreaPower {
        AreaPower {
            area_mm2: self.area_mm2 * factor,
            power_mw: self.power_mw * factor,
        }
    }
}

impl fmt::Display for AreaPower {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} mm², {:.3} mW", self.area_mm2, self.power_mw)
    }
}

/// A labeled component breakdown, used to print the per-figure tables.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostBreakdown {
    /// Ordered `(component label, value)` rows.
    pub rows: Vec<(String, f64)>,
    /// Unit label for the values (e.g. `"µm²"`, `"mW"`).
    pub unit: String,
}

nova_serde::impl_serde_struct!(CostBreakdown { rows, unit });

impl CostBreakdown {
    /// Creates an empty breakdown with a unit label.
    #[must_use]
    pub fn new(unit: impl Into<String>) -> Self {
        Self {
            rows: Vec::new(),
            unit: unit.into(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, label: impl Into<String>, value: f64) {
        self.rows.push((label.into(), value));
    }

    /// Sum of all rows.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.rows.iter().map(|(_, v)| v).sum()
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (label, value) in &self.rows {
            writeln!(f, "  {label:<40} {value:>12.3} {}", self.unit)?;
        }
        write!(f, "  {:<40} {:>12.3} {}", "total", self.total(), self.unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_and_scaled_compose() {
        let a = AreaPower::new(1.0, 10.0);
        let b = AreaPower::new(0.5, 5.0);
        let s = a.plus(b).scaled(2.0);
        assert_eq!(s.area_mm2, 3.0);
        assert_eq!(s.power_mw, 30.0);
    }

    #[test]
    fn breakdown_total() {
        let mut b = CostBreakdown::new("mW");
        b.push("macs", 1.5);
        b.push("sram", 2.5);
        assert_eq!(b.total(), 4.0);
        let s = b.to_string();
        assert!(s.contains("macs") && s.contains("total"));
    }

    #[test]
    fn display_formats() {
        let a = AreaPower::new(1.2345, 67.89);
        assert!(a.to_string().contains("mm²"));
    }
}
