/// Technology constants for the analytic area/power/timing model.
///
/// All area values are µm², all capacitances are pF (so that
/// `pF · V² · GHz = mW`), all delays are ps. The `cmos22` values are
/// calibrated against the component totals the paper publishes (Table III,
/// Table IV, §V.A scalability); `EXPERIMENTS.md` records the residuals.
#[derive(Debug, Clone, PartialEq)]
pub struct TechModel {
    /// Process label, e.g. `"22nm"`.
    pub node: &'static str,
    /// Nominal supply voltage (V). The paper evaluates at 0.8 V.
    pub voltage: f64,

    // --- Sequential / logic ---
    /// Flip-flop area per bit (µm²), including local clock buffering.
    pub reg_bit_area_um2: f64,
    /// Effective switched capacitance per register bit per cycle (pF).
    pub reg_bit_cap_pf: f64,
    /// Area of one 16-bit MAC slice (multiplier + saturating adder, µm²).
    pub mac16_area_um2: f64,
    /// Effective switched capacitance of one MAC operation (pF).
    pub mac16_cap_pf: f64,
    /// Comparator area per breakpoint threshold (µm²); an N-breakpoint
    /// address generator is N-1 comparators plus the thermometer encoder.
    pub comparator_area_um2: f64,
    /// Switched capacitance per comparator evaluation (pF).
    pub comparator_cap_pf: f64,
    /// 2:1 mux area per bit (µm²) — the router bypass/buffer selector.
    pub mux_bit_area_um2: f64,

    // --- SRAM macros ---
    /// 6T bitcell area (µm²/bit) for a single-ported array.
    pub sram_bit_area_um2: f64,
    /// Extra bitcell area factor per additional port (each port adds a
    /// wordline + bitline pair; area grows roughly linearly).
    pub sram_port_area_factor: f64,
    /// Fixed periphery area per bank (decoder, sense amps; µm²).
    pub sram_periphery_area_um2: f64,
    /// Additional periphery area per port (µm²).
    pub sram_port_periphery_um2: f64,
    /// Switched capacitance of one read access on a single-ported small
    /// bank (pF). Dominated by periphery for 64 B banks.
    pub sram_read_cap_pf: f64,
    /// Switched capacitance of one read access per port on a heavily
    /// multi-ported bank (pF) — long bitlines across the widened array.
    pub sram_multiport_read_cap_pf: f64,

    // --- Wires / repeaters (the NOVA link) ---
    /// Wire capacitance per bit per mm (pF).
    pub wire_cap_pf_per_mm: f64,
    /// Clockless repeater area per link bit per router (µm²).
    pub repeater_area_um2_per_bit: f64,
    /// Average signal activity on the broadcast link (fraction of bits
    /// toggling per cycle; slope/bias words are reused across many
    /// lookups, so activity is well below 0.5).
    pub link_activity: f64,

    // --- Leakage ---
    /// Leakage power density (mW per mm² of standard-cell/SRAM area).
    pub leakage_mw_per_mm2: f64,

    // --- Timing (for the SMART-style single-cycle multi-hop model) ---
    /// Repeated-wire delay per mm (ps).
    pub wire_delay_ps_per_mm: f64,
    /// Router bypass-path delay per hop (mux + repeater, ps).
    pub hop_logic_delay_ps: f64,
    /// Flop clock-to-Q plus setup overhead per cycle (ps).
    pub clocking_overhead_ps: f64,
}

// `node` is a `&'static str` process label, so the model is
// serialize-only: it can be persisted alongside results but only
// rebuilt from the named constructors.
nova_serde::impl_serialize_struct!(TechModel {
    node,
    voltage,
    reg_bit_area_um2,
    reg_bit_cap_pf,
    mac16_area_um2,
    mac16_cap_pf,
    comparator_area_um2,
    comparator_cap_pf,
    mux_bit_area_um2,
    sram_bit_area_um2,
    sram_port_area_factor,
    sram_periphery_area_um2,
    sram_port_periphery_um2,
    sram_read_cap_pf,
    sram_multiport_read_cap_pf,
    wire_cap_pf_per_mm,
    repeater_area_um2_per_bit,
    link_activity,
    leakage_mw_per_mm2,
    wire_delay_ps_per_mm,
    hop_logic_delay_ps,
    clocking_overhead_ps,
});

impl TechModel {
    /// The calibrated commercial-22nm-like model used throughout the
    /// reproduction (paper's node, 0.8 V operating point).
    #[must_use]
    pub fn cmos22() -> Self {
        Self {
            node: "22nm",
            voltage: 0.8,
            reg_bit_area_um2: 6.0,
            reg_bit_cap_pf: 0.0012,
            mac16_area_um2: 500.0,
            mac16_cap_pf: 0.10,
            comparator_area_um2: 14.0,
            comparator_cap_pf: 0.002,
            mux_bit_area_um2: 2.0,
            sram_bit_area_um2: 0.35,
            sram_port_area_factor: 1.0,
            sram_periphery_area_um2: 600.0,
            sram_port_periphery_um2: 1060.0,
            sram_read_cap_pf: 0.62,
            sram_multiport_read_cap_pf: 1.74,
            wire_cap_pf_per_mm: 0.15,
            repeater_area_um2_per_bit: 4.0,
            link_activity: 0.15,
            leakage_mw_per_mm2: 15.0,
            wire_delay_ps_per_mm: 62.0,
            hop_logic_delay_ps: 0.0,
            clocking_overhead_ps: 45.0,
        }
    }

    /// A 28 nm variant (used only for the Table IV NACU comparison row;
    /// NACU is published at 28 nm). Scales area by the node-area ratio and
    /// keeps capacitances — adequate for an order-of-magnitude row.
    #[must_use]
    pub fn cmos28() -> Self {
        let mut t = Self::cmos22();
        t.node = "28nm";
        let s = (28.0f64 / 22.0).powi(2);
        t.reg_bit_area_um2 *= s;
        t.mac16_area_um2 *= s;
        t.comparator_area_um2 *= s;
        t.mux_bit_area_um2 *= s;
        t.sram_bit_area_um2 *= s;
        t.sram_periphery_area_um2 *= s;
        t.sram_port_periphery_um2 *= s;
        t.repeater_area_um2_per_bit *= s;
        t
    }

    /// Re-derives the model at a different supply voltage (DVFS ablation).
    ///
    /// Alpha-power scaling with a 0.35 V threshold: gate delay grows as
    /// the overdrive shrinks, leakage falls roughly with V², dynamic
    /// energy with V² (already captured by [`TechModel::dynamic_power_mw`]
    /// reading `voltage`).
    ///
    /// # Panics
    ///
    /// Panics if `voltage` is at or below the threshold voltage (no
    /// overdrive — the circuit does not switch).
    #[must_use]
    pub fn at_voltage(&self, voltage: f64) -> Self {
        const VT: f64 = 0.35;
        assert!(voltage > VT, "supply must exceed the 0.35 V threshold");
        let mut t = self.clone();
        let delay_scale = (self.voltage - VT) / (voltage - VT);
        t.voltage = voltage;
        t.wire_delay_ps_per_mm *= delay_scale;
        t.hop_logic_delay_ps *= delay_scale;
        t.clocking_overhead_ps *= delay_scale;
        t.leakage_mw_per_mm2 *= (voltage / self.voltage).powi(2);
        t
    }

    /// Dynamic power (mW) of `cap_pf` switched at `freq_ghz` with the given
    /// activity factor, at this model's supply voltage.
    #[must_use]
    pub fn dynamic_power_mw(&self, cap_pf: f64, freq_ghz: f64, activity: f64) -> f64 {
        cap_pf * self.voltage * self.voltage * freq_ghz * activity
    }

    /// Leakage power (mW) of `area_um2` of cells.
    #[must_use]
    pub fn leakage_mw(&self, area_um2: f64) -> f64 {
        area_um2 * 1e-6 * self.leakage_mw_per_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_power_units_check() {
        let t = TechModel::cmos22();
        // 1 pF at 1 GHz, 0.8 V, activity 1 = 0.64 mW.
        assert!((t.dynamic_power_mw(1.0, 1.0, 1.0) - 0.64).abs() < 1e-12);
    }

    #[test]
    fn leakage_scales_with_area() {
        let t = TechModel::cmos22();
        assert!((t.leakage_mw(1e6) - t.leakage_mw_per_mm2).abs() < 1e-9);
        assert_eq!(t.leakage_mw(0.0), 0.0);
    }

    #[test]
    fn dvfs_low_voltage_slower_but_leaner() {
        let t08 = TechModel::cmos22();
        let t06 = t08.at_voltage(0.6);
        // Slower wires, lower leakage, lower dynamic power per pF·GHz.
        assert!(t06.wire_delay_ps_per_mm > t08.wire_delay_ps_per_mm);
        assert!(t06.leakage_mw_per_mm2 < t08.leakage_mw_per_mm2);
        assert!(t06.dynamic_power_mw(1.0, 1.0, 1.0) < t08.dynamic_power_mw(1.0, 1.0, 1.0));
    }

    #[test]
    fn dvfs_overdrive_speeds_up() {
        let t08 = TechModel::cmos22();
        let t10 = t08.at_voltage(1.0);
        assert!(t10.wire_delay_ps_per_mm < t08.wire_delay_ps_per_mm);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn dvfs_below_threshold_panics() {
        let _ = TechModel::cmos22().at_voltage(0.3);
    }

    #[test]
    fn cmos28_is_larger_but_same_caps() {
        let t22 = TechModel::cmos22();
        let t28 = TechModel::cmos28();
        assert!(t28.mac16_area_um2 > t22.mac16_area_um2);
        assert_eq!(t28.mac16_cap_pf, t22.mac16_cap_pf);
    }
}
