//! Analytic 22 nm technology model — the reproduction's substitute for the
//! paper's Synopsys Design Compiler / Cadence Innovus flow.
//!
//! The paper synthesizes the NOVA NoC and the LUT-based baselines on a
//! commercial 22 nm process and reports component area (µm²/mm²) and power
//! (mW). Without the PDK those absolute numbers cannot be re-derived, so
//! this crate provides a *calibrated analytic model*: per-component area
//! and switched-capacitance constants (registers, SRAM macros, comparators,
//! MACs, wires, clockless repeaters) chosen so that the published component
//! totals of Table III / Table IV are approximately reproduced, and —
//! more importantly — so that every *ratio* the paper's conclusions rest on
//! (NOVA vs per-neuron LUT vs per-core LUT, scaling with neuron count,
//! multi-port SRAM blow-up, frequency/leakage behaviour) follows from the
//! same physical reasoning the paper gives.
//!
//! Structure:
//! - [`TechModel`]: the constants (one place to calibrate),
//! - [`components`]: area/capacitance of primitive blocks,
//! - [`units`]: composite vector-unit costs (NOVA router, per-neuron LUT,
//!   per-core LUT, NVDLA-SDP-style unit),
//! - [`timing`]: repeated-wire delay model → max single-cycle hops
//!   (reproduces "10 routers at 1.5 GHz, 1 mm apart"),
//! - [`report`]: area/power report types shared by the bench harness.
//!
//! # Example
//!
//! ```
//! use nova_synth::{TechModel, units};
//!
//! let tech = TechModel::cmos22();
//! // A NOVA router serving 128 neurons with 16 breakpoints, 1 mm pitch:
//! let cost = units::nova_router(&tech, 128, 16, 1.0);
//! assert!(cost.area_um2 > 0.0);
//! // At TPU clocks (1.4 GHz core / 2.8 GHz NoC) it draws tens of mW:
//! let p = cost.power_mw(&tech, 1.4, 2.8, 1.0);
//! assert!(p > 0.0 && p < 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod tech;

pub mod components;
pub mod report;
pub mod timing;
pub mod units;

pub use report::{AreaPower, CostBreakdown};
pub use tech::TechModel;
pub use units::{LutSharing, LutUnitCost, NovaRouterCost};
