//! Composite vector-unit cost models: the NOVA router and the LUT-based
//! baselines, assembled from [`crate::components`].

use crate::report::CostBreakdown;
use crate::{components, TechModel};

/// Width of the NOVA link: 8 slope/bias pairs × 16-bit words + 1 tag bit.
pub const NOVA_LINK_BITS: usize = 257;

/// Bytes per LUT bank: 16 `(slope, bias)` pairs × 2 words × 2 bytes
/// (paper §V.B: "the size of each LUT bank is kept at 64 bytes").
pub const LUT_BANK_BYTES: usize = 64;

/// Which LUT baseline variant (paper §V.B models both extremes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LutSharing {
    /// One single-ported 64 B bank per neuron (maximum redundancy).
    PerNeuron,
    /// One multi-ported 64 B bank per core, shared by all neurons.
    PerCore,
}

nova_serde::impl_serde_enum!(LutSharing { PerNeuron, PerCore });

impl LutSharing {
    /// Display label matching the paper's Table III rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LutSharing::PerNeuron => "naive LUT (per-neuron LUT)",
            LutSharing::PerCore => "naive LUT (per-core LUT)",
        }
    }
}

/// Cost of one NOVA router serving `neurons` output neurons.
///
/// Two clock domains: the per-neuron datapath (comparator + MAC) runs at
/// the accelerator clock; the link (registers, wires, repeaters) runs at
/// the NoC clock (2× for 16 breakpoints).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NovaRouterCost {
    /// Total cell area (µm²).
    pub area_um2: f64,
    /// Switched capacitance of the per-neuron datapath (pF, at core clock).
    pub core_cap_pf: f64,
    /// Switched capacitance of the link per broadcast cycle (pF, at NoC
    /// clock, before the link activity factor).
    pub noc_cap_pf: f64,
}

nova_serde::impl_serde_struct!(NovaRouterCost {
    area_um2,
    core_cap_pf,
    noc_cap_pf
});

impl NovaRouterCost {
    /// Power at the given core/NoC clocks (GHz) and datapath activity.
    ///
    /// `datapath_activity` is the fraction of cycles the neurons actually
    /// issue approximation lookups (workload-dependent). The broadcast is
    /// demand-driven — the mapper only injects flits when lookups are
    /// pending — so the link's bit-level activity constant is scaled by
    /// the same factor.
    #[must_use]
    pub fn power_mw(
        &self,
        tech: &TechModel,
        core_ghz: f64,
        noc_ghz: f64,
        datapath_activity: f64,
    ) -> f64 {
        tech.dynamic_power_mw(self.core_cap_pf, core_ghz, datapath_activity)
            + tech.dynamic_power_mw(
                self.noc_cap_pf,
                noc_ghz,
                tech.link_activity * datapath_activity,
            )
            + tech.leakage_mw(self.area_um2)
    }
}

/// Cost of one LUT-based vector unit serving `neurons` output neurons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LutUnitCost {
    /// Total cell area (µm²).
    pub area_um2: f64,
    /// Switched capacitance per lookup cycle (pF, at the accelerator
    /// clock; LUT baselines have a single clock domain — paper §V.B).
    pub cap_pf: f64,
}

nova_serde::impl_serde_struct!(LutUnitCost { area_um2, cap_pf });

impl LutUnitCost {
    /// Power at the accelerator clock (GHz) and datapath activity.
    #[must_use]
    pub fn power_mw(&self, tech: &TechModel, core_ghz: f64, datapath_activity: f64) -> f64 {
        tech.dynamic_power_mw(self.cap_pf, core_ghz, datapath_activity)
            + tech.leakage_mw(self.area_um2)
    }
}

/// Cost of one NOVA router (Fig 3 micro-architecture): per-neuron
/// comparator trees and MACs, a 257-bit input register stage with bypass,
/// clockless repeaters, and the `pitch_mm` of broadcast wire to the next
/// router.
///
/// # Panics
///
/// Panics if `neurons == 0` or `breakpoints == 0`.
#[must_use]
pub fn nova_router(
    tech: &TechModel,
    neurons: usize,
    breakpoints: usize,
    pitch_mm: f64,
) -> NovaRouterCost {
    assert!(neurons > 0, "a router serves at least one neuron");
    assert!(breakpoints > 0, "need at least one segment");
    let (mac_area, mac_cap) = components::mac16(tech);
    let (cmp_area, cmp_cap) = components::comparator_tree(tech, breakpoints);
    let (reg_area, reg_cap) = components::register(tech, NOVA_LINK_BITS);
    let (rep_area, wire_cap) = components::link_segment(tech, NOVA_LINK_BITS, pitch_mm);
    let mux_area = components::bypass_mux(tech, NOVA_LINK_BITS);
    // Small control FSM (buffer/forward select, tag compare enable).
    let control_area = 500.0;

    let area_um2 =
        neurons as f64 * (mac_area + cmp_area) + reg_area + rep_area + mux_area + control_area;
    let core_cap_pf = neurons as f64 * (mac_cap + cmp_cap);
    let noc_cap_pf = reg_cap + wire_cap;
    NovaRouterCost {
        area_um2,
        core_cap_pf,
        noc_cap_pf,
    }
}

/// Cost of one LUT-based vector unit (Fig 1 architecture) for `neurons`
/// neurons and `breakpoints` segments, in either sharing variant.
///
/// Per-neuron: every neuron owns a single-ported 64 B bank.
/// Per-core: one bank with `neurons` read ports.
///
/// # Panics
///
/// Panics if `neurons == 0` or `breakpoints == 0`.
#[must_use]
pub fn lut_unit(
    tech: &TechModel,
    neurons: usize,
    breakpoints: usize,
    sharing: LutSharing,
) -> LutUnitCost {
    assert!(neurons > 0, "a vector unit serves at least one neuron");
    assert!(breakpoints > 0, "need at least one segment");
    let (mac_area, mac_cap) = components::mac16(tech);
    let (cmp_area, cmp_cap) = components::comparator_tree(tech, breakpoints);
    let (bank_area, bank_cap, banks, accesses) = match sharing {
        LutSharing::PerNeuron => {
            let (a, c) = components::sram_bank(tech, LUT_BANK_BYTES, 1);
            (a, c, neurons as f64, neurons as f64)
        }
        LutSharing::PerCore => {
            let (a, c) = components::sram_bank(tech, LUT_BANK_BYTES, neurons);
            // One bank, but every neuron's port fires each lookup cycle.
            (a, c, 1.0, neurons as f64)
        }
    };
    let area_um2 = neurons as f64 * (mac_area + cmp_area) + banks * bank_area;
    let cap_pf = neurons as f64 * (mac_cap + cmp_cap) + accesses * bank_cap;
    LutUnitCost { area_um2, cap_pf }
}

/// Per-component area breakdown of a NOVA router — where the µm² go
/// (used by the Fig 6 analysis and the documentation).
///
/// # Panics
///
/// Panics if `neurons == 0` or `breakpoints == 0`.
#[must_use]
pub fn nova_router_breakdown(
    tech: &TechModel,
    neurons: usize,
    breakpoints: usize,
    pitch_mm: f64,
) -> CostBreakdown {
    assert!(neurons > 0 && breakpoints > 0);
    let (mac_area, _) = components::mac16(tech);
    let (cmp_area, _) = components::comparator_tree(tech, breakpoints);
    let (reg_area, _) = components::register(tech, NOVA_LINK_BITS);
    let (rep_area, _) = components::link_segment(tech, NOVA_LINK_BITS, pitch_mm);
    let mut b = CostBreakdown::new("µm²");
    b.push(format!("{neurons} × 16-bit MAC"), neurons as f64 * mac_area);
    b.push(
        format!("{neurons} × comparator tree ({breakpoints} bp)"),
        neurons as f64 * cmp_area,
    );
    b.push("257-bit link registers", reg_area);
    b.push("clockless repeaters", rep_area);
    b.push("bypass mux", components::bypass_mux(tech, NOVA_LINK_BITS));
    b.push("control FSM", 500.0);
    b
}

/// Per-component area breakdown of a LUT vector unit.
///
/// # Panics
///
/// Panics if `neurons == 0` or `breakpoints == 0`.
#[must_use]
pub fn lut_unit_breakdown(
    tech: &TechModel,
    neurons: usize,
    breakpoints: usize,
    sharing: LutSharing,
) -> CostBreakdown {
    assert!(neurons > 0 && breakpoints > 0);
    let (mac_area, _) = components::mac16(tech);
    let (cmp_area, _) = components::comparator_tree(tech, breakpoints);
    let mut b = CostBreakdown::new("µm²");
    b.push(format!("{neurons} × 16-bit MAC"), neurons as f64 * mac_area);
    b.push(
        format!("{neurons} × comparator tree ({breakpoints} bp)"),
        neurons as f64 * cmp_area,
    );
    match sharing {
        LutSharing::PerNeuron => {
            let (bank, _) = components::sram_bank(tech, LUT_BANK_BYTES, 1);
            b.push(
                format!("{neurons} × 64 B single-port SRAM"),
                neurons as f64 * bank,
            );
        }
        LutSharing::PerCore => {
            let (bank, _) = components::sram_bank(tech, LUT_BANK_BYTES, neurons);
            b.push(format!("1 × 64 B SRAM, {neurons} ports"), bank);
        }
    }
    b
}

/// Cost model of the NVDLA Single Data Processor (SDP): a LUT-based
/// activation engine with an interpolation datapath, modeled as a
/// per-core LUT plus the SDP's fixed-function pipeline — bias-add,
/// batch-norm and activation sub-units (≈3 MAC-equivalents per lane,
/// nvdla.org primer) and a 257-entry interpolation table (1 KiB).
///
/// Unlike the overlay units, the SDP is the host's always-clocked native
/// engine (no demand gating), so callers evaluate its power at activity 1
/// — that asymmetry is where the paper's 37.8× Jetson power gap comes
/// from.
///
/// # Panics
///
/// Panics if `neurons == 0`.
#[must_use]
pub fn nvdla_sdp(tech: &TechModel, neurons: usize) -> LutUnitCost {
    assert!(neurons > 0);
    let base = lut_unit(tech, neurons, 16, LutSharing::PerCore);
    let (mac_area, mac_cap) = components::mac16(tech);
    let (big_lut_area, big_lut_cap) = components::sram_bank(tech, 1024, 1);
    LutUnitCost {
        area_um2: base.area_um2 + neurons as f64 * 3.0 * mac_area + big_lut_area,
        cap_pf: base.cap_pf + neurons as f64 * 3.0 * mac_cap + big_lut_cap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechModel {
        TechModel::cmos22()
    }

    #[test]
    fn nova_beats_luts_on_area_at_tpu_scale() {
        let t = tech();
        let nova = nova_router(&t, 128, 16, 1.0);
        let per_neuron = lut_unit(&t, 128, 16, LutSharing::PerNeuron);
        let per_core = lut_unit(&t, 128, 16, LutSharing::PerCore);
        assert!(nova.area_um2 < per_core.area_um2);
        assert!(per_core.area_um2 < per_neuron.area_um2);
        // Paper: >3× area improvement vs LUT vector units.
        assert!(per_neuron.area_um2 / nova.area_um2 > 2.5);
    }

    #[test]
    fn nova_beats_luts_on_power_despite_2x_clock() {
        let t = tech();
        let nova = nova_router(&t, 128, 16, 1.0);
        let per_neuron = lut_unit(&t, 128, 16, LutSharing::PerNeuron);
        let per_core = lut_unit(&t, 128, 16, LutSharing::PerCore);
        let p_nova = nova.power_mw(&t, 1.4, 2.8, 1.0);
        let p_pn = per_neuron.power_mw(&t, 1.4, 1.0);
        let p_pc = per_core.power_mw(&t, 1.4, 1.0);
        assert!(p_nova < p_pn, "NOVA {p_nova} vs per-neuron {p_pn}");
        assert!(p_nova < p_pc, "NOVA {p_nova} vs per-core {p_pc}");
        // Paper: per-core burns more power than per-neuron (port blow-up).
        assert!(p_pc > p_pn);
    }

    #[test]
    fn per_core_wins_area_loses_power_tradeoff() {
        // The paper's stated trade-off between the two LUT extremes.
        let t = tech();
        for n in [32, 64, 128, 256] {
            let pn = lut_unit(&t, n, 16, LutSharing::PerNeuron);
            let pc = lut_unit(&t, n, 16, LutSharing::PerCore);
            assert!(pc.area_um2 < pn.area_um2, "n={n}");
            assert!(
                pc.power_mw(&t, 1.4, 1.0) > pn.power_mw(&t, 1.4, 1.0),
                "n={n}"
            );
        }
    }

    #[test]
    fn nova_scales_better_with_neuron_count() {
        // Fig 6's shape: NOVA's area grows with slope (MAC+comp) only,
        // LUTs add a bank per neuron, so the gap widens.
        let t = tech();
        let gap = |n: usize| {
            lut_unit(&t, n, 16, LutSharing::PerNeuron).area_um2
                - nova_router(&t, n, 16, 1.0).area_um2
        };
        assert!(gap(256) > gap(64));
        assert!(gap(64) > gap(16));
    }

    #[test]
    fn single_unit_matches_table4_ballpark() {
        // Table IV: one NOVA approximator slice ≈ 898.75 µm².
        let t = tech();
        let r = nova_router(&t, 16, 16, 0.3);
        let per_neuron = r.area_um2 / 16.0;
        assert!(
            (600.0..1_400.0).contains(&per_neuron),
            "per-neuron slice = {per_neuron} µm²"
        );
    }

    #[test]
    fn sdp_dwarfs_nova_at_nvdla_scale() {
        // Table III Jetson rows: SDP 0.1382 mm² vs NOVA 0.0276 mm² (≈5×).
        let t = tech();
        let sdp = nvdla_sdp(&t, 16);
        let nova = nova_router(&t, 16, 16, 0.3);
        let ratio = (2.0 * sdp.area_um2) / (2.0 * nova.area_um2);
        assert!(ratio > 3.0, "SDP/NOVA area ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "at least one neuron")]
    fn zero_neurons_panics() {
        let _ = nova_router(&tech(), 0, 16, 1.0);
    }

    #[test]
    fn breakdowns_sum_to_unit_totals() {
        let t = tech();
        let nova = nova_router(&t, 128, 16, 1.0);
        let nb = nova_router_breakdown(&t, 128, 16, 1.0);
        assert!((nb.total() - nova.area_um2).abs() < 1e-6);
        for sharing in [LutSharing::PerNeuron, LutSharing::PerCore] {
            let unit = lut_unit(&t, 128, 16, sharing);
            let b = lut_unit_breakdown(&t, 128, 16, sharing);
            assert!(
                (b.total() - unit.area_um2).abs() < 1e-6,
                "{sharing:?}: {} vs {}",
                b.total(),
                unit.area_um2
            );
        }
    }

    #[test]
    fn nova_breakdown_dominated_by_macs_at_scale() {
        let t = tech();
        let b = nova_router_breakdown(&t, 256, 16, 1.0);
        let mac_row = &b.rows[0];
        assert!(mac_row.1 > b.total() / 2.0, "MACs dominate a big router");
    }
}
