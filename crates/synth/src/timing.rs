//! Repeated-wire timing: how many NOVA routers a broadcast can traverse in
//! one clock cycle.
//!
//! The NOVA NoC uses clockless repeaters (SMART-style, Krishna et al. HPCA
//! 2013): the flit registered at the line's head ripples combinationally
//! through every router bypass until the cycle budget is spent. The paper's
//! place-and-route result: **at 1.5 GHz with routers placed 1 mm apart, a
//! maximum of 10 routers can be traversed in a cycle** — every Table II
//! configuration keeps ≤ 10 routers so broadcast stays single-cycle.

use crate::TechModel;

/// Propagation delay (ps) to traverse `hops` router-to-router segments of
/// `pitch_mm` each, including per-hop bypass logic.
#[must_use]
pub fn traversal_delay_ps(tech: &TechModel, hops: usize, pitch_mm: f64) -> f64 {
    hops as f64 * (tech.wire_delay_ps_per_mm * pitch_mm + tech.hop_logic_delay_ps)
}

/// Maximum hops traversable in one cycle at `freq_ghz` with `pitch_mm`
/// router spacing.
///
/// # Example
///
/// ```
/// use nova_synth::{timing, TechModel};
///
/// let tech = TechModel::cmos22();
/// // The paper's P&R result: 10 routers at 1.5 GHz, 1 mm apart.
/// assert_eq!(timing::max_hops_per_cycle(&tech, 1.5, 1.0), 10);
/// ```
#[must_use]
pub fn max_hops_per_cycle(tech: &TechModel, freq_ghz: f64, pitch_mm: f64) -> usize {
    if freq_ghz <= 0.0 || pitch_mm <= 0.0 {
        return 0;
    }
    let period_ps = 1000.0 / freq_ghz;
    let budget = period_ps - tech.clocking_overhead_ps;
    if budget <= 0.0 {
        return 0;
    }
    let per_hop = tech.wire_delay_ps_per_mm * pitch_mm + tech.hop_logic_delay_ps;
    (budget / per_hop).floor() as usize
}

/// Number of cycles a broadcast needs to reach `routers` routers on the
/// line at `freq_ghz` / `pitch_mm` (≥ 1; multi-cycle beyond the single-
/// cycle reach, which is the scalability trade-off of §V.A).
#[must_use]
pub fn broadcast_cycles(tech: &TechModel, routers: usize, freq_ghz: f64, pitch_mm: f64) -> usize {
    if routers == 0 {
        return 0;
    }
    let reach = max_hops_per_cycle(tech, freq_ghz, pitch_mm).max(1);
    routers.div_ceil(reach)
}

/// Highest clock (GHz) at which `routers` routers are still single-cycle
/// reachable, searched on a 1 MHz grid — the "lower clock frequency"
/// trade-off the paper mentions for >10 routers.
#[must_use]
pub fn max_single_cycle_freq_ghz(tech: &TechModel, routers: usize, pitch_mm: f64) -> f64 {
    if routers == 0 {
        return f64::INFINITY;
    }
    let per_hop = tech.wire_delay_ps_per_mm * pitch_mm + tech.hop_logic_delay_ps;
    let period = routers as f64 * per_hop + tech.clocking_overhead_ps;
    1000.0 / period
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechModel {
        TechModel::cmos22()
    }

    #[test]
    fn paper_scalability_point() {
        // §V.A: max 10 routers, 1 mm apart, at 1.5 GHz.
        assert_eq!(max_hops_per_cycle(&tech(), 1.5, 1.0), 10);
    }

    #[test]
    fn all_table2_configs_single_cycle() {
        // REACT (10), TPU-v3 (4), TPU-v4 (8), Jetson (2) — all ≤ 10.
        let t = tech();
        for routers in [10usize, 4, 8, 2] {
            assert_eq!(
                broadcast_cycles(&t, routers, 1.5, 1.0),
                1,
                "{routers} routers"
            );
        }
    }

    #[test]
    fn beyond_ten_routers_goes_multicycle() {
        let t = tech();
        assert!(broadcast_cycles(&t, 11, 1.5, 1.0) > 1);
        assert_eq!(broadcast_cycles(&t, 20, 1.5, 1.0), 2);
    }

    #[test]
    fn slower_clock_reaches_further() {
        let t = tech();
        assert!(max_hops_per_cycle(&t, 0.75, 1.0) > max_hops_per_cycle(&t, 1.5, 1.0));
    }

    #[test]
    fn tighter_pitch_reaches_further() {
        let t = tech();
        assert!(max_hops_per_cycle(&t, 1.5, 0.5) > max_hops_per_cycle(&t, 1.5, 1.0));
    }

    #[test]
    fn max_freq_consistent_with_max_hops() {
        let t = tech();
        let f = max_single_cycle_freq_ghz(&t, 10, 1.0);
        assert!(f >= 1.5, "10 routers must close timing at 1.5 GHz, got {f}");
        assert_eq!(max_hops_per_cycle(&t, f, 1.0), 10);
        // And at slightly above, 10 hops no longer fit.
        assert!(max_hops_per_cycle(&t, f * 1.05, 1.0) < 10);
    }

    #[test]
    fn degenerate_inputs() {
        let t = tech();
        assert_eq!(max_hops_per_cycle(&t, 0.0, 1.0), 0);
        assert_eq!(max_hops_per_cycle(&t, 1.5, 0.0), 0);
        assert_eq!(broadcast_cycles(&t, 0, 1.5, 1.0), 0);
        // Absurdly fast clock: budget goes negative.
        assert_eq!(max_hops_per_cycle(&t, 50.0, 1.0), 0);
    }
}
