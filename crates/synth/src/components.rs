//! Primitive hardware blocks: area and switched capacitance.
//!
//! Every composite in [`crate::units`] is assembled from these five
//! primitives, mirroring how the paper's RTL decomposes (Fig 3: comparator
//! front-end, link registers + bypass, repeated wires, MAC back-end; Fig 1:
//! LUT banks).

use crate::TechModel;

/// Area/capacitance of a register bank of `bits` flops.
#[must_use]
pub fn register(tech: &TechModel, bits: usize) -> (f64, f64) {
    (
        bits as f64 * tech.reg_bit_area_um2,
        bits as f64 * tech.reg_bit_cap_pf,
    )
}

/// Area/capacitance of one 16-bit MAC slice.
#[must_use]
pub fn mac16(tech: &TechModel) -> (f64, f64) {
    (tech.mac16_area_um2, tech.mac16_cap_pf)
}

/// Area/capacitance of a lookup-address generator for `breakpoints`
/// segments: `breakpoints - 1` threshold comparators plus a thermometer
/// encoder (folded into the per-comparator constant).
#[must_use]
pub fn comparator_tree(tech: &TechModel, breakpoints: usize) -> (f64, f64) {
    let n = breakpoints.saturating_sub(1).max(1) as f64;
    (n * tech.comparator_area_um2, n * tech.comparator_cap_pf)
}

/// Area and per-access read capacitance of an SRAM bank.
///
/// `bytes` of storage with `read_ports` simultaneous read ports. Multi-port
/// banks pay linearly growing bitcell area (extra wordline/bitline pairs),
/// per-port periphery, and a much larger per-access capacitance (long
/// bitlines across the widened array) — the physical reason the per-core
/// LUT baseline wins on area but loses on power (paper §V.C.2).
///
/// Returns `(area_um2, read_cap_pf_per_port_access)`.
///
/// # Panics
///
/// Panics if `read_ports == 0` (a bank nobody can read is a config bug).
#[must_use]
pub fn sram_bank(tech: &TechModel, bytes: usize, read_ports: usize) -> (f64, f64) {
    assert!(read_ports > 0, "SRAM bank needs at least one read port");
    let bits = (bytes * 8) as f64;
    let port_growth = 1.0 + tech.sram_port_area_factor * (read_ports - 1) as f64;
    let area = bits * tech.sram_bit_area_um2 * port_growth
        + tech.sram_periphery_area_um2
        + read_ports as f64 * tech.sram_port_periphery_um2;
    let cap = if read_ports == 1 {
        tech.sram_read_cap_pf
    } else {
        tech.sram_multiport_read_cap_pf
    };
    (area, cap)
}

/// Area/capacitance of a repeated broadcast wire segment: `bits` wires of
/// `pitch_mm` length plus their clockless repeaters.
///
/// Wires route over logic in upper metal, so only the repeaters contribute
/// die area; the wire capacitance is what the broadcast pays per hop.
#[must_use]
pub fn link_segment(tech: &TechModel, bits: usize, pitch_mm: f64) -> (f64, f64) {
    let area = bits as f64 * tech.repeater_area_um2_per_bit;
    let cap = bits as f64 * tech.wire_cap_pf_per_mm * pitch_mm;
    (area, cap)
}

/// Area of the router's 2:1 bypass/buffer mux across `bits`.
#[must_use]
pub fn bypass_mux(tech: &TechModel, bits: usize) -> f64 {
    bits as f64 * tech.mux_bit_area_um2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechModel {
        TechModel::cmos22()
    }

    #[test]
    fn register_scales_linearly() {
        let t = tech();
        let (a1, c1) = register(&t, 100);
        let (a2, c2) = register(&t, 200);
        assert!((a2 - 2.0 * a1).abs() < 1e-9);
        assert!((c2 - 2.0 * c1).abs() < 1e-12);
    }

    #[test]
    fn single_port_sram_64b_matches_calibration() {
        // 64 B single-ported bank ≈ 1.8k µm² — the per-neuron LUT slice
        // memory (paper: per-neuron LUT ≈ 2.4k µm²/neuron incl. MAC+comp).
        let (area, cap) = sram_bank(&tech(), 64, 1);
        assert!((1_500.0..2_500.0).contains(&area), "area = {area}");
        assert!((cap - 0.62).abs() < 1e-9);
    }

    #[test]
    fn multiport_sram_blows_up() {
        let t = tech();
        let (a1, c1) = sram_bank(&t, 64, 1);
        let (a128, c128) = sram_bank(&t, 64, 128);
        assert!(a128 > 50.0 * a1, "128-port bank must dwarf single-port");
        assert!(c128 > c1);
    }

    #[test]
    #[should_panic(expected = "at least one read port")]
    fn zero_port_bank_panics() {
        let _ = sram_bank(&tech(), 64, 0);
    }

    #[test]
    fn comparator_tree_min_one() {
        let t = tech();
        let (a1, _) = comparator_tree(&t, 1);
        assert!(a1 > 0.0);
        let (a16, _) = comparator_tree(&t, 16);
        assert!((a16 - 15.0 * t.comparator_area_um2).abs() < 1e-9);
    }

    #[test]
    fn link_segment_cap_scales_with_pitch() {
        let t = tech();
        let (_, c1) = link_segment(&t, 257, 1.0);
        let (_, c2) = link_segment(&t, 257, 2.0);
        assert!((c2 - 2.0 * c1).abs() < 1e-9);
    }
}
