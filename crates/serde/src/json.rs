//! JSON text encoding/decoding for [`Value`].
//!
//! A deliberately small, strict JSON subset: UTF-8 text, `\uXXXX`
//! escapes (including surrogate pairs), no comments, no trailing
//! commas. Numbers parse to `U64`/`I64` when integral and in range,
//! else `F64` — mirroring how the value model distinguishes counters
//! from measurements.

use crate::{Error, Value};

impl Value {
    /// Encodes this value as compact JSON text.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_json(self, &mut out);
        out
    }

    /// Parses JSON text into a value.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Json`] with a byte offset on malformed input.
    pub fn from_json(text: &str) -> Result<Self, Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn write_json(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(x, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, x)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_json(x, out);
            }
            out.push('}');
        }
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // `{}` prints integral floats without a point; keep the float
        // shape so the value re-parses as F64, not U64.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; encode as null like serde_json does.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &str) -> Error {
        Error::Json {
            offset: self.pos,
            reason: reason.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(xs));
        }
        loop {
            xs.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Seq(xs)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Map(entries)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if !self.eat_literal("\\u") {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code)
                        } else {
                            char::from_u32(hi)
                        };
                        out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 straight from input.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    if self.pos > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Map(vec![
            (
                "name".to_string(),
                Value::Str("bert \"tiny\"\n".to_string()),
            ),
            (
                "xs".to_string(),
                Value::Seq(vec![Value::U64(1), Value::F64(-2.5), Value::Null]),
            ),
            ("ok".to_string(), Value::Bool(true)),
        ]);
        assert_eq!(Value::from_json(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = Value::F64(4.0);
        assert_eq!(v.to_json(), "4.0");
        assert_eq!(Value::from_json("4.0").unwrap(), Value::F64(4.0));
        assert_eq!(Value::from_json("4").unwrap(), Value::U64(4));
    }

    #[test]
    fn negative_integers_parse_signed() {
        assert_eq!(Value::from_json("-7").unwrap(), Value::I64(-7));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            Value::from_json(r#""é😀""#).unwrap(),
            Value::Str("é😀".to_string())
        );
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(
            Value::from_json("\"naïve\"").unwrap(),
            Value::Str("naïve".to_string())
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Value::from_json("[1, 2,]").unwrap_err();
        assert!(matches!(err, Error::Json { offset: 6, .. }), "{err:?}");
        assert!(Value::from_json("{\"a\": 1} junk").is_err());
    }

    #[test]
    fn non_finite_floats_encode_null() {
        assert_eq!(Value::F64(f64::NAN).to_json(), "null");
    }
}
