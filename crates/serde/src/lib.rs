//! Dependency-free serialization for the NOVA workspace.
//!
//! The dependency policy forbids external crates (the build must work
//! fully offline), so this crate supplies the small serialization core
//! the workspace needs: a self-describing [`Value`] model, [`Serialize`]
//! / [`Deserialize`] traits over it, a JSON text format for persisting
//! sweep results, and `macro_rules!` impl generators that stand in for
//! derive macros.
//!
//! Design notes:
//!
//! - [`Value`] is the interchange type: every serializable type lowers
//!   to it and is rebuilt from it, so round-trip tests don't need a
//!   format crate at all.
//! - JSON is supported as *text* via [`Value::to_json`] and
//!   [`Value::from_json`]; `T::to_json_string` / `from_json_str` are
//!   blanket helpers on the traits.
//! - [`impl_serde_struct!`] and [`impl_serde_enum!`] generate the two
//!   trait impls for named-field structs and C-like enums;
//!   [`impl_serialize_struct!`] covers write-only types (those holding
//!   `&'static str` names that cannot be deserialized into).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod value;

pub use value::Value;

use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A map key required during deserialization was absent.
    MissingField(String),
    /// A value had the wrong shape (e.g. a string where a number was
    /// expected). Carries a human-readable description.
    TypeMismatch(String),
    /// An enum string did not match any known variant.
    UnknownVariant(String),
    /// JSON text could not be parsed; carries byte offset and reason.
    Json {
        /// Byte offset of the failure in the input.
        offset: usize,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::MissingField(name) => write!(f, "missing field `{name}`"),
            Error::TypeMismatch(what) => write!(f, "type mismatch: {what}"),
            Error::UnknownVariant(v) => write!(f, "unknown enum variant `{v}`"),
            Error::Json { offset, reason } => {
                write!(f, "JSON parse error at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Lowers a type to the self-describing [`Value`] model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;

    /// Serializes `self` to compact JSON text.
    fn to_json_string(&self) -> String {
        self.to_value().to_json()
    }
}

/// Rebuilds a type from the [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Parses JSON text and rebuilds `Self` from it.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on malformed JSON or shape mismatch.
    fn from_json_str(s: &str) -> Result<Self, Error> {
        Self::from_value(&Value::from_json(s)?)
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64()?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::TypeMismatch(format!("{raw} out of range")))
            }
        }
    )+};
}

impl_serde_uint!(u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::U64(*self)
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_u64()
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let raw = v.as_u64()?;
        usize::try_from(raw).map_err(|_| Error::TypeMismatch(format!("{raw} out of range")))
    }
}

impl Serialize for i64 {
    fn to_value(&self) -> Value {
        Value::I64(*self)
    }
}

impl Deserialize for i64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_i64()
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::TypeMismatch(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string)
    }
}

// `&'static str` model names serialize fine; they just can't deserialize.
impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq()? {
            [a, b] => Ok((A::from_value(a)?, B::from_value(b)?)),
            xs => Err(Error::TypeMismatch(format!(
                "expected a pair, got sequence of {}",
                xs.len()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// ---------------------------------------------------------------------------
// Impl-generator macros (stand-ins for `#[derive(Serialize, Deserialize)]`)
// ---------------------------------------------------------------------------

/// Implements [`Serialize`] + [`Deserialize`] for a named-field struct.
///
/// ```
/// #[derive(Debug, PartialEq)]
/// struct Report { cycles: u64, energy_mj: f64 }
/// nova_serde::impl_serde_struct!(Report { cycles, energy_mj });
///
/// use nova_serde::{Deserialize, Serialize};
/// let r = Report { cycles: 7, energy_mj: 1.5 };
/// let back = Report::from_value(&r.to_value()).unwrap();
/// assert_eq!(back, r);
/// ```
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        $crate::impl_serialize_struct!($ty { $($field),+ });
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                Ok(Self {
                    $($field: v.field(stringify!($field))?,)+
                })
            }
        }
    };
}

/// Implements only [`Serialize`] for a named-field struct (for types
/// holding `&'static str` fields, which cannot be rebuilt from data).
#[macro_export]
macro_rules! impl_serialize_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Map(vec![
                    $((stringify!($field).to_string(),
                       $crate::Serialize::to_value(&self.$field)),)+
                ])
            }
        }
    };
}

/// Implements [`Serialize`] + [`Deserialize`] for a C-like enum, encoding
/// each variant as its name string.
///
/// ```
/// #[derive(Debug, PartialEq, Clone, Copy)]
/// enum Kind { NovaNoc, PerCoreLut }
/// nova_serde::impl_serde_enum!(Kind { NovaNoc, PerCoreLut });
///
/// use nova_serde::{Deserialize, Serialize};
/// assert_eq!(Kind::from_value(&Kind::NovaNoc.to_value()).unwrap(), Kind::NovaNoc);
/// ```
#[macro_export]
macro_rules! impl_serde_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                match self {
                    $($ty::$variant => $crate::Value::Str(stringify!($variant).to_string()),)+
                }
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                match v.as_str()? {
                    $(s if s == stringify!($variant) => Ok($ty::$variant),)+
                    other => Err($crate::Error::UnknownVariant(other.to_string())),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Inner {
        xs: Vec<f64>,
        on: bool,
    }
    impl_serde_struct!(Inner { xs, on });

    #[derive(Debug, PartialEq)]
    struct Outer {
        name: String,
        inner: Inner,
        count: Option<u32>,
    }
    impl_serde_struct!(Outer { name, inner, count });

    #[derive(Debug, PartialEq, Clone, Copy)]
    enum Mode {
        Fast,
        Slow,
    }
    impl_serde_enum!(Mode { Fast, Slow });

    fn sample() -> Outer {
        Outer {
            name: "bert-tiny".to_string(),
            inner: Inner {
                xs: vec![1.0, -2.5, 0.0],
                on: true,
            },
            count: None,
        }
    }

    #[test]
    fn struct_value_roundtrip() {
        let o = sample();
        assert_eq!(Outer::from_value(&o.to_value()).unwrap(), o);
    }

    #[test]
    fn struct_json_roundtrip() {
        let o = sample();
        let json = o.to_json_string();
        assert_eq!(Outer::from_json_str(&json).unwrap(), o);
    }

    #[test]
    fn enum_roundtrip_and_unknown_variant() {
        assert_eq!(
            Mode::from_value(&Mode::Slow.to_value()).unwrap(),
            Mode::Slow
        );
        assert!(matches!(
            Mode::from_value(&Value::Str("Medium".into())),
            Err(Error::UnknownVariant(_))
        ));
    }

    #[test]
    fn missing_field_reported() {
        let v = Value::Map(vec![("xs".to_string(), Value::Seq(vec![]))]);
        assert!(matches!(Inner::from_value(&v), Err(Error::MissingField(f)) if f == "on"));
    }

    #[test]
    fn numeric_coercions() {
        // Integer-valued JSON numbers deserialize into f64 fields and
        // vice versa only when lossless.
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(u64::from_value(&Value::F64(4.0)).unwrap(), 4);
        assert!(u64::from_value(&Value::F64(4.5)).is_err());
    }
}
