//! The self-describing interchange [`Value`] and shape accessors.

use crate::{Deserialize, Error};

/// A self-describing data value: the interchange model every
/// serializable type lowers to.
///
/// Maps preserve insertion order (they are association lists, not hash
/// maps) so JSON output is deterministic and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (counters, cycle counts).
    U64(u64),
    /// Signed integer (raw fixed-point words).
    I64(i64),
    /// Floating point (seconds, millijoules, mm²).
    F64(f64),
    /// UTF-8 string (names, enum variants).
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered key → value map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Short name of this value's shape, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) => "u64",
            Value::I64(_) => "i64",
            Value::F64(_) => "f64",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Reads this value as a `u64`, accepting lossless numeric shapes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TypeMismatch`] for non-numeric or lossy values.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::U64(x) => Ok(x),
            Value::I64(x) if x >= 0 => Ok(x as u64),
            // 2^53: beyond this, f64 cannot represent every integer.
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= 9_007_199_254_740_992.0 => {
                Ok(x as u64)
            }
            ref other => Err(Error::TypeMismatch(format!(
                "expected unsigned integer, got {}",
                other.kind()
            ))),
        }
    }

    /// Reads this value as an `i64`, accepting lossless numeric shapes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TypeMismatch`] for non-numeric or lossy values.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match *self {
            Value::I64(x) => Ok(x),
            Value::U64(x) => {
                i64::try_from(x).map_err(|_| Error::TypeMismatch(format!("{x} overflows i64")))
            }
            #[allow(clippy::cast_possible_truncation)]
            Value::F64(x) if x.fract() == 0.0 && x.abs() <= 9_007_199_254_740_992.0 => Ok(x as i64),
            ref other => Err(Error::TypeMismatch(format!(
                "expected integer, got {}",
                other.kind()
            ))),
        }
    }

    /// Reads this value as an `f64` (integers widen losslessly).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TypeMismatch`] for non-numeric values.
    pub fn as_f64(&self) -> Result<f64, Error> {
        match *self {
            Value::F64(x) => Ok(x),
            #[allow(clippy::cast_precision_loss)]
            Value::U64(x) => Ok(x as f64),
            #[allow(clippy::cast_precision_loss)]
            Value::I64(x) => Ok(x as f64),
            ref other => Err(Error::TypeMismatch(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }

    /// Reads this value as a string slice.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TypeMismatch`] for non-string values.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::TypeMismatch(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }

    /// Reads this value as a sequence.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TypeMismatch`] for non-sequence values.
    pub fn as_seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(xs) => Ok(xs),
            other => Err(Error::TypeMismatch(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }

    /// Reads this value as a map (association list).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TypeMismatch`] for non-map values.
    pub fn as_map(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(entries) => Ok(entries),
            other => Err(Error::TypeMismatch(format!(
                "expected map, got {}",
                other.kind()
            ))),
        }
    }

    /// Looks up `name` in a map value (first match wins).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TypeMismatch`] if `self` is not a map, or
    /// [`Error::MissingField`] when the key is absent.
    pub fn get(&self, name: &str) -> Result<&Value, Error> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::MissingField(name.to_string()))
    }

    /// Looks up `name` in a map value and deserializes it into `T`.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::get`] and `T::from_value` failures.
    pub fn field<T: Deserialize>(&self, name: &str) -> Result<T, Error> {
        T::from_value(self.get(name)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_lookup_and_missing_field() {
        let v = Value::Map(vec![("a".to_string(), Value::U64(1))]);
        assert_eq!(v.field::<u64>("a").unwrap(), 1);
        assert!(matches!(v.field::<u64>("b"), Err(Error::MissingField(_))));
    }

    #[test]
    fn shape_errors_name_the_actual_kind() {
        let err = Value::Str("x".into()).as_f64().unwrap_err();
        assert!(matches!(err, Error::TypeMismatch(m) if m.contains("string")));
    }
}
